"""Streaming engine tests: window eviction, cross-day campaign identity,
checkpoint round-trips, and an end-to-end synthetic week."""

import json

import pytest

from repro.core.results import Campaign
from repro.errors import CheckpointError, StreamError
from repro.eval.figures import persistence_series_detailed
from repro.httplog.records import HttpRequest
from repro.httplog.trace import HttpTrace
from repro.stream import (
    CampaignTracker,
    DayPartition,
    ListSink,
    RollingWindow,
    StreamingSmash,
    TrackerConfig,
    load_checkpoint,
    save_checkpoint,
)
from repro.synth import TraceGenerator, small_scenario
from repro.synth.oracles import RedirectOracle
from repro.whois.record import WhoisRecord
from repro.whois.registry import WhoisRegistry


def request(client, host, uri="/x.html"):
    return HttpRequest(
        timestamp=0.0, client=client, host=host, server_ip="1.1.1.1", uri=uri
    )


def partition(day, hosts, whois=None, redirects=None):
    trace = HttpTrace([request(f"c{day}", host) for host in hosts], name=f"day{day}")
    return DayPartition(day=day, trace=trace, whois=whois, redirects=redirects)


def campaign(campaign_id, servers, clients):
    return Campaign(
        campaign_id=campaign_id,
        main_index=0,
        servers=frozenset(servers),
        clients=frozenset(clients),
    )


class TestRollingWindow:
    def test_size_must_be_positive(self):
        with pytest.raises(StreamError):
            RollingWindow(0)

    def test_eviction_keeps_last_n_days(self):
        window = RollingWindow(size=2)
        assert window.append(partition(0, ["a.com"])) == ()
        assert window.append(partition(1, ["b.com"])) == ()
        evicted = window.append(partition(2, ["c.com"]))
        assert [p.day for p in evicted] == [0]
        assert window.days == (1, 2)

    def test_days_must_increase(self):
        window = RollingWindow(size=3)
        window.append(partition(1, ["a.com"]))
        with pytest.raises(StreamError):
            window.append(partition(1, ["b.com"]))
        with pytest.raises(StreamError):
            window.append(partition(0, ["b.com"]))

    def test_combined_merges_trace_whois_redirects(self):
        whois0 = WhoisRegistry([WhoisRecord(domain="a.com", registrant="r0")])
        whois1 = WhoisRegistry([WhoisRecord(domain="b.com", registrant="r1")])
        redirects1 = RedirectOracle(landing_of={"b.com": "land.com"})
        window = RollingWindow(size=2)
        window.append(partition(0, ["a.com"], whois=whois0))
        window.append(partition(1, ["b.com"], whois=whois1, redirects=redirects1))
        trace, whois, redirects = window.combined()
        assert len(trace) == 2
        assert {r.host for r in trace} == {"a.com", "b.com"}
        assert "a.com" in whois and "b.com" in whois
        assert redirects.landing_server("b.com") == "land.com"

    def test_combined_cached_until_advance(self):
        window = RollingWindow(size=2)
        window.append(partition(0, ["a.com"]))
        first = window.combined()
        assert window.combined() is first
        window.append(partition(1, ["b.com"]))
        assert window.combined() is not first

    def test_combined_empty_window_rejected(self):
        with pytest.raises(StreamError):
            RollingWindow().combined()

    def test_partition_roundtrip(self):
        original = partition(
            3,
            ["a.com", "b.com"],
            whois=WhoisRegistry([WhoisRecord(domain="a.com", registrant="r")]),
            redirects=RedirectOracle(landing_of={"a.com": "land.com"}),
        )
        restored = DayPartition.from_dict(original.to_dict())
        assert restored.day == 3
        assert restored.trace == original.trace
        assert restored.whois.lookup("a.com").registrant == "r"
        assert restored.redirects.landing_server("a.com") == "land.com"


class TestCampaignTracker:
    def test_new_campaigns_get_sequential_stable_ids(self):
        tracker = CampaignTracker()
        events = tracker.advance(0, [campaign(0, ["a", "b"], ["c1"]),
                                     campaign(1, ["x", "y"], ["c2"])])
        assert [e.kind for e in events] == ["new_campaign", "new_campaign"]
        assert [c.uid for c in tracker.campaigns] == ["C0001", "C0002"]

    def test_server_overlap_keeps_identity(self):
        tracker = CampaignTracker()
        tracker.advance(0, [campaign(0, ["a", "b", "c"], ["c1"])])
        events = tracker.advance(1, [campaign(0, ["a", "b", "d"], ["c1"])])
        assert events == []  # matched, same size: nothing alertable
        (tracked,) = tracker.campaigns
        assert tracked.uid == "C0001"
        assert tracked.days_seen == (0, 1)
        assert tracked.servers == frozenset({"a", "b", "d"})
        assert tracked.all_servers == frozenset({"a", "b", "c", "d"})
        assert tracked.servers_added == 1
        assert tracked.servers_removed == 1

    def test_agile_campaign_matched_through_clients(self):
        tracker = CampaignTracker()
        tracker.advance(0, [campaign(0, ["a", "b"], ["bot1", "bot2"])])
        # Full server rotation, same bots — the agile pattern of Fig. 7.
        tracker.advance(1, [campaign(0, ["x", "y"], ["bot1", "bot2"])])
        (tracked,) = tracker.campaigns
        assert tracked.uid == "C0001"
        assert tracked.days_seen == (0, 1)
        assert tracked.servers_added == 2 and tracked.servers_removed == 2

    def test_client_fallback_can_be_disabled(self):
        tracker = CampaignTracker(TrackerConfig(match_clients=False, max_gap_days=0))
        tracker.advance(0, [campaign(0, ["a", "b"], ["bot1"])])
        tracker.advance(1, [campaign(0, ["x", "y"], ["bot1"])])
        assert [c.uid for c in tracker.campaigns] == ["C0001", "C0002"]

    def test_growth_event_reports_added_servers(self):
        tracker = CampaignTracker()
        tracker.advance(0, [campaign(0, ["a", "b"], ["c1"])])
        events = tracker.advance(1, [campaign(0, ["a", "b", "c"], ["c1"])])
        (event,) = events
        assert event.kind == "campaign_growth"
        assert event.uid == "C0001"
        assert event.detail["added"] == ["c"]
        assert event.detail["previous_servers"] == 2

    def test_death_after_gap_and_id_never_reused(self):
        tracker = CampaignTracker(TrackerConfig(max_gap_days=1))
        tracker.advance(0, [campaign(0, ["a", "b"], ["c1"])])
        assert tracker.advance(1, []) == []  # within the allowed gap
        (event,) = tracker.advance(2, [])
        assert event.kind == "campaign_died" and event.uid == "C0001"
        assert tracker.active == ()
        # A fresh, unrelated campaign mints a new id.
        tracker.advance(3, [campaign(0, ["z1", "z2"], ["c9"])])
        assert [c.uid for c in tracker.campaigns] == ["C0001", "C0002"]

    def test_greedy_matching_is_one_to_one(self):
        tracker = CampaignTracker()
        tracker.advance(0, [campaign(0, ["a", "b", "c", "d"], ["c1"])])
        # Both halves overlap the tracked identity; the better-matching
        # one keeps the id, the other becomes a new campaign.
        events = tracker.advance(1, [
            campaign(0, ["a", "b", "c"], ["c1"]),
            campaign(1, ["d", "e", "f", "g"], ["c2"]),
        ])
        assert [e.kind for e in events].count("new_campaign") == 1
        best = tracker.get("C0001")
        assert best.servers == frozenset({"a", "b", "c"})

    def test_days_must_increase(self):
        tracker = CampaignTracker()
        tracker.advance(0, [])
        with pytest.raises(StreamError):
            tracker.advance(0, [])

    def test_persistence_matches_batch_computation(self):
        daily = [
            [campaign(0, ["a", "b"], ["c1"]), campaign(1, ["x"], ["c2"])],
            [campaign(0, ["a", "b", "n"], ["c1"])],
            [campaign(0, ["p", "q"], ["c9"])],
        ]
        tracker = CampaignTracker()
        for day, campaigns in enumerate(daily):
            tracker.advance(day, list(campaigns))
        assert tracker.persistence_series() == persistence_series_detailed(daily)

    def test_state_roundtrip(self):
        tracker = CampaignTracker(TrackerConfig(server_jaccard=0.5, max_gap_days=1))
        tracker.advance(0, [campaign(0, ["a", "b"], ["c1"])])
        tracker.advance(1, [campaign(0, ["a", "b", "c"], ["c1"])])
        restored = CampaignTracker.from_dict(tracker.to_dict())
        assert restored.to_dict() == tracker.to_dict()
        # The restored tracker keeps matching where the original left off.
        tracker.advance(2, [campaign(0, ["a", "b", "c"], ["c1"])])
        restored.advance(2, [campaign(0, ["a", "b", "c"], ["c1"])])
        assert restored.to_dict() == tracker.to_dict()

    def test_age_tie_break_survives_five_digit_uids(self):
        """Regression: age ties used to break on the zero-padded uid
        string, which stops being age order at C10000 ("C10000" sorts
        before "C9999"); the numeric creation serial must win."""
        tracker = CampaignTracker()
        # Mint 10001 identities in one cheap advance (no tracked
        # campaigns yet, so no pairwise scoring happens).
        tracker.advance(
            0,
            [campaign(i, [f"srv{i}"], [f"cli{i}"]) for i in range(10001)],
        )
        assert tracker.campaigns[-1].uid == "C10001"
        # Give the old C9999 and the young C10001 an equal-score claim on
        # one observed campaign; the *older* identity must keep it.
        from dataclasses import replace

        tracker._campaigns["C9999"] = replace(
            tracker._campaigns["C9999"], servers=frozenset({"shared", "nine"})
        )
        tracker._campaigns["C10001"] = replace(
            tracker._campaigns["C10001"], servers=frozenset({"shared", "ten"})
        )
        tracker.advance(1, [campaign(0, ["shared"], ["cli-new"])])
        assert tracker.get("C9999").last_seen == 1
        assert tracker.get("C10001").last_seen == 0

    def test_expiry_tolerates_gaps_within_max_gap_days(self):
        tracker = CampaignTracker(TrackerConfig(max_gap_days=2))
        tracker.advance(0, [campaign(0, ["a", "b"], ["c1"])])
        # Seen again after a one-day hole: still the same identity, and
        # the gap does not count toward expiry.
        assert tracker.advance(1, []) == []
        tracker.advance(2, [campaign(0, ["a", "b"], ["c1"])])
        tracked = tracker.get("C0001")
        assert tracked.days_seen == (0, 2)
        assert tracked.max_consecutive_days == 1
        # Unseen for exactly max_gap_days: alive; one more day: dead.
        assert tracker.advance(3, []) == []
        assert tracker.advance(4, []) == []
        (event,) = tracker.advance(5, [])
        assert event.kind == "campaign_died" and event.uid == "C0001"

    def test_growth_event_on_client_fallback_match(self):
        tracker = CampaignTracker()
        tracker.advance(0, [campaign(0, ["a", "b"], ["bot1", "bot2"])])
        # Full rotation onto *more* servers, same bots: the growth event
        # must fire off the tier-1 client match and say so.
        (event,) = tracker.advance(1, [campaign(0, ["x", "y", "z"], ["bot1", "bot2"])])
        assert event.kind == "campaign_growth"
        assert event.detail["matched_on"] == "clients"
        assert event.detail["previous_servers"] == 2
        assert event.detail["servers"] == 3

    def test_max_consecutive_days_zero_when_never_sighted(self):
        from repro.stream import TrackedCampaign

        restored = TrackedCampaign.from_dict(
            {
                "uid": "C0001",
                "first_seen": 0,
                "last_seen": 0,
                "days_seen": [],
                "servers": [],
                "clients": [],
                "all_servers": [],
            }
        )
        assert restored.max_consecutive_days == 0

    def test_legacy_checkpoint_derives_serial_from_uid(self):
        from repro.stream import TrackedCampaign

        legacy = {
            "uid": "C10234",
            "first_seen": 0,
            "last_seen": 0,
            "days_seen": [0],
            "servers": ["a"],
            "clients": ["c"],
            "all_servers": ["a"],
        }
        assert TrackedCampaign.from_dict(legacy).serial == 10234

    def test_event_detail_rejects_reserved_envelope_keys(self):
        from repro.stream import TrackEvent

        with pytest.raises(StreamError):
            TrackEvent(kind="new_campaign", day=0, uid="C0001", detail={"day": 9})
        event = TrackEvent(
            kind="new_campaign",
            day=0,
            uid="C0001",
            detail={"servers": 3},
            severity="info",
            score=0.5,
        )
        assert event.to_dict() == {
            "kind": "new_campaign",
            "day": 0,
            "uid": "C0001",
            "servers": 3,
            "severity": "info",
            "score": 0.5,
        }


@pytest.fixture(scope="module")
def week_datasets():
    """Seven days of the small scenario (persistent + agile campaigns)."""
    return list(TraceGenerator(small_scenario(seed=3, days=7)).iter_days())


@pytest.fixture(scope="module")
def streamed(week_datasets):
    """One full streaming run over the week."""
    sink = ListSink()
    engine = StreamingSmash(sinks=(sink,))
    updates = engine.run_datasets(week_datasets)
    return engine, updates, sink


class TestStreamingSmashEndToEnd:
    def test_week_produces_daily_campaigns(self, streamed):
        _, updates, _ = streamed
        assert [u.day for u in updates] == list(range(7))
        assert all(u.num_campaigns >= 1 for u in updates)
        assert all(u.window_days == (u.day,) for u in updates)

    def test_stable_identity_persists_across_days(self, streamed):
        engine, _, _ = streamed
        persistent = [
            c for c in engine.tracker.campaigns if c.max_consecutive_days >= 3
        ]
        assert persistent, "expected campaigns persisting >= 3 consecutive days"
        for tracked in persistent:
            assert tracked.first_seen + len(tracked.days_seen) - 1 <= tracked.last_seen + 1

    def test_events_mirror_sink(self, streamed):
        _, updates, sink = streamed
        assert [e.to_dict() for u in updates for e in u.events] == [
            e.to_dict() for e in sink.events
        ]
        assert sink.of_kind("new_campaign")

    def test_tracker_persistence_matches_batch_figure7(self, streamed):
        engine, updates, _ = streamed
        batch = persistence_series_detailed([list(u.campaigns) for u in updates])
        assert engine.tracker.persistence_series() == batch

    def test_rerun_at_reuses_cached_mining(self, streamed):
        engine, updates, _ = streamed
        rerun = engine.rerun_at(engine.thresh)
        assert rerun.campaigns == updates[-1].result.campaigns

    def test_checkpoint_resume_reproduces_final_state(self, week_datasets, tmp_path):
        full = StreamingSmash()
        interrupted = StreamingSmash()
        checkpoint = tmp_path / "mid.ckpt"
        for dataset in week_datasets[:4]:
            full.ingest_dataset(dataset)
            interrupted.ingest_dataset(dataset)
        save_checkpoint(interrupted, checkpoint)
        del interrupted  # "kill" the original process
        resumed = load_checkpoint(checkpoint)
        assert resumed.last_day == 3
        for dataset in week_datasets[4:]:
            full.ingest_dataset(dataset)
            resumed.ingest_dataset(dataset)
        assert resumed.tracker.to_dict() == full.tracker.to_dict()
        assert resumed.state_dict() == full.state_dict()

    def test_multi_day_window_combines_days(self, week_datasets):
        engine = StreamingSmash(window_size=2, single_client_thresh=None)
        first = engine.ingest_dataset(week_datasets[0])
        second = engine.ingest_dataset(week_datasets[1])
        assert first.window_days == (0,)
        assert second.window_days == (0, 1)


class TestCheckpointErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path / "absent.ckpt")

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(path)

    def test_foreign_file(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(CheckpointError, match="not a streaming checkpoint"):
            load_checkpoint(path)

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "old.ckpt"
        path.write_text(json.dumps(
            {"format": "repro.stream.checkpoint", "version": 999, "state": {}}
        ))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)
