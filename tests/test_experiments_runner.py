"""Smoke tests for the experiment registry at reduced scale.

The full-scale runner is exercised by ``benchmarks/``; here we verify the
plumbing (dataset/mining/result caching, table shapes) on tiny scenarios
so the unit suite stays fast.
"""

import pytest

from repro.eval.experiments import THRESHOLDS, ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale=0.04)


class TestRunnerPlumbing:
    def test_dataset_cached(self, runner):
        assert runner.dataset("2011") is runner.dataset("2011")

    def test_unknown_dataset(self, runner):
        with pytest.raises(KeyError):
            runner.dataset("1999")

    def test_mined_cached(self, runner):
        assert runner.mined("2011") is runner.mined("2011")

    def test_result_cached_per_threshold(self, runner):
        a = runner.result("2011", 0.8)
        b = runner.result("2011", 0.8)
        c = runner.result("2011", 1.5)
        assert a is b
        assert a is not c

    def test_verification_rows(self, runner):
        summary = runner.verification("2011", 0.8)
        row = summary.table2_row()
        assert set(row) >= {"SMASH", "False Positives", "FP (Updated)"}

    def test_table2_structure(self, runner):
        table = runner.table2()
        assert set(table) == {"Data2011day", "Data2012day"}
        for sweep in table.values():
            assert set(sweep) == set(THRESHOLDS)

    def test_fig8_fractions(self, runner):
        decomposition = runner.fig8()
        if decomposition:
            assert sum(decomposition.values()) == pytest.approx(1.0)

    def test_table4_categories(self, runner):
        table = runner.table4()
        assert set(table) == {"Communication", "Attacking"}

    def test_false_negatives_structure(self, runner):
        missed = runner.false_negatives()
        for threat, servers in missed.items():
            assert isinstance(threat, str)
            assert servers
