"""CSR graph backend unit tests (edge cases and backend parity).

The CSR backend (:mod:`repro.graph.csr`) must be indistinguishable from
the pure-python :class:`~repro.graph.wgraph.WeightedGraph` reference in
every observable way — the byte-identity contract the pipeline-level
equivalence tests enforce end to end is pinned down here at the graph
API, on the shapes most likely to break an array implementation: empty
graphs, single nodes, isolated nodes, duplicate-edge accumulation, and
post-finalize mutation.  The ``resolve_auto_cap`` tests cover the
load-adaptive heavy-hitter gate that rides the same PR.
"""

from __future__ import annotations

import pytest

from repro.core.interning import (
    PairStats,
    accumulate_pair_counts,
    add_overlap_edges,
    overlap_ratio_edges,
    resolve_auto_cap,
)
from repro.errors import GraphError
from repro.graph import (
    HAVE_NUMPY,
    CsrGraph,
    WeightedGraph,
    connected_components,
    louvain_communities,
    modularity,
    new_graph,
    resolve_use_csr,
)

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


def both_backends(labels, edges=()):
    """The same graph built on the CSR and the reference backend."""
    csr = CsrGraph.from_sorted_labels(labels)
    ref = WeightedGraph.from_sorted_labels(labels)
    csr.add_sorted_edges(list(edges))
    ref.add_sorted_edges(list(edges))
    return csr, ref


def assert_same_graph(csr, ref):
    """Every public observation must agree between the two backends."""
    assert csr == ref
    assert ref == csr
    assert len(csr) == len(ref)
    assert csr.nodes == ref.nodes
    assert list(csr.edges()) == list(ref.edges())
    assert csr.num_edges() == ref.num_edges()
    assert csr.total_weight == ref.total_weight
    assert csr.density() == ref.density()
    for node in ref.nodes:
        assert csr.neighbors(node) == ref.neighbors(node)
        assert csr.degree(node) == ref.degree(node)


class TestResolveUseCsr:
    def test_false_is_always_pure_python(self):
        assert resolve_use_csr(False) is False

    def test_none_auto_detects(self):
        assert resolve_use_csr(None) is HAVE_NUMPY

    @needs_numpy
    def test_true_with_numpy(self):
        assert resolve_use_csr(True) is True

    @pytest.mark.skipif(HAVE_NUMPY, reason="covers the numpy-less path")
    def test_true_without_numpy_raises(self):
        with pytest.raises(GraphError):
            resolve_use_csr(True)

    def test_new_graph_backend_selection(self):
        assert isinstance(new_graph(["a", "b"], use_csr=False), WeightedGraph)
        if HAVE_NUMPY:
            assert isinstance(new_graph(["a", "b"], use_csr=True), CsrGraph)
            assert isinstance(new_graph(["a", "b"]), CsrGraph)
        else:
            assert isinstance(new_graph(["a", "b"]), WeightedGraph)


@needs_numpy
class TestCsrEdgeCases:
    def test_empty_graph(self):
        csr, ref = both_backends([])
        assert_same_graph(csr, ref)
        assert csr.csr_view() is not None
        assert louvain_communities(csr).communities == ()
        assert connected_components(csr) == []

    def test_single_node(self):
        csr, ref = both_backends(["only"])
        assert_same_graph(csr, ref)
        assert csr.neighbors("only") == {}
        assert csr.density_of(["only"]) == ref.density_of(["only"])
        result = louvain_communities(csr)
        assert result.communities == (frozenset({"only"}),)

    def test_isolated_nodes(self):
        labels = ["a", "b", "c", "d", "e"]
        edges = [(0, 2, 1.0), (2, 4, 2.0)]
        csr, ref = both_backends(labels, edges)
        assert_same_graph(csr, ref)
        assert csr.neighbors("b") == {}
        assert csr.degree("d") == 0.0
        assert louvain_communities(csr).communities == louvain_communities(
            ref
        ).communities
        assert connected_components(csr) == connected_components(ref)

    def test_duplicate_edges_accumulate(self):
        labels = ["a", "b", "c"]
        edges = [(0, 1, 0.5), (0, 2, 1.0), (1, 2, 0.25)]
        csr, ref = both_backends(labels, edges)
        # The same pair again, through the incremental interface.
        for graph in (csr, ref):
            graph.add_edge("a", "b", 0.5)
            graph.add_edge("a", "b", 1.5)
        assert_same_graph(csr, ref)
        assert csr.edge_weight("a", "b") == 2.5
        assert csr.num_edges() == 3

    def test_mutation_disables_csr_view_but_not_parity(self):
        labels = ["a", "b", "c", "d"]
        csr, ref = both_backends(labels, [(0, 1, 1.0), (1, 2, 2.0)])
        assert csr.csr_view() is not None
        for graph in (csr, ref):
            graph.add_edge("c", "d", 0.75)
            graph.add_edge("a", "d", 0.1)
        assert csr.csr_view() is None  # overlay engaged
        assert_same_graph(csr, ref)
        members = ["a", "c", "d"]
        assert csr.density_of(members) == ref.density_of(members)

    def test_add_sorted_edge_arrays_matches_iterable_path(self):
        import numpy as np

        labels = [f"s{i}" for i in range(6)]
        triples = [(0, 1, 0.5), (0, 3, 1.5), (2, 5, 0.125), (3, 4, 2.0)]
        csr_arrays = CsrGraph.from_sorted_labels(labels)
        csr_arrays.add_sorted_edge_arrays(
            np.array([t[0] for t in triples], dtype=np.int64),
            np.array([t[1] for t in triples], dtype=np.int64),
            np.array([t[2] for t in triples], dtype=np.float64),
        )
        csr_iter, ref = both_backends(labels, triples)
        assert_same_graph(csr_arrays, ref)
        assert_same_graph(csr_iter, ref)

    def test_subgraph_and_density_parity(self):
        labels = [f"n{i}" for i in range(8)]
        edges = [
            (0, 1, 1.0),
            (0, 2, 0.5),
            (1, 2, 0.5),
            (3, 4, 2.0),
            (4, 6, 1.0),
            (5, 7, 0.25),
        ]
        csr, ref = both_backends(labels, edges)
        members = ["n0", "n1", "n2", "n4", "n6"]
        assert_same_graph(csr.subgraph(members), ref.subgraph(members))
        assert csr.density_of(members) == ref.density_of(members)
        # Unknown members are ignored identically.
        assert csr.density_of(["n0", "n1", "zz"]) == ref.density_of(["n0", "n1", "zz"])

    def test_modularity_and_louvain_parity(self):
        labels = [f"n{i}" for i in range(9)]
        edges = [
            (0, 1, 1.0),
            (0, 2, 1.0),
            (1, 2, 1.0),
            (3, 4, 1.0),
            (3, 5, 1.0),
            (4, 5, 1.0),
            (6, 7, 1.0),
            (7, 8, 1.0),
            (2, 3, 0.1),
            (5, 6, 0.1),
        ]
        csr, ref = both_backends(labels, edges)
        partition = {label: index // 3 for index, label in enumerate(labels)}
        assert modularity(csr, partition) == modularity(ref, partition)
        assert (
            louvain_communities(csr).communities
            == louvain_communities(ref).communities
        )

    def test_remove_node_unsupported(self):
        csr, _ = both_backends(["a", "b"], [(0, 1, 1.0)])
        with pytest.raises(GraphError):
            csr.remove_node("a")

    def test_overlap_edge_arrays_match_reference_edges(self):
        width = 6
        groups = [[0, 1, 2], [0, 1], [2, 3, 4], [1, 2], [4, 5]]
        pair_common = accumulate_pair_counts(groups, width)
        sizes = {i: 2.0 + i for i in range(width)}
        floor = 0.01
        fast = CsrGraph.from_sorted_labels([f"s{i}" for i in range(width)])
        slow = WeightedGraph.from_sorted_labels([f"s{i}" for i in range(width)])
        add_overlap_edges(fast, pair_common, width, sizes, floor)
        slow.add_sorted_edges(overlap_ratio_edges(pair_common, width, sizes, floor))
        assert_same_graph(fast, slow)


class TestResolveAutoCap:
    def test_disabled_or_explicit_cap_pass_through(self):
        assert resolve_auto_cap([10, 10, 10], cap=0, auto_cap=0) == 0
        assert resolve_auto_cap([10, 10, 10], cap=7, auto_cap=5) == 7

    def test_within_budget_stays_uncapped(self):
        # 3 groups of size 4 -> 18 enumerated pairs, budget 18 fits.
        assert resolve_auto_cap([4, 4, 4], cap=0, auto_cap=18) == 0

    def test_over_budget_engages_largest_fitting_cap(self):
        # sizes 2 (1 pair), 4 (6 pairs), 100 (4950 pairs): budget 100
        # admits sizes <= 4 (7 pairs) but not the heavy hitter.
        assert resolve_auto_cap([2, 4, 100], cap=0, auto_cap=100) == 4

    def test_floor_is_two(self):
        # Even the size-2 groups exceed the budget: floor at 2, never 0.
        assert resolve_auto_cap([2] * 50, cap=0, auto_cap=3) == 2

    def test_singletons_ignored(self):
        assert resolve_auto_cap([0, 1, 1, 1], cap=0, auto_cap=1) == 0

    def test_accumulate_records_and_applies_auto_cap(self):
        width = 40
        groups = [list(range(30)), [0, 1], [2, 3], [4, 5, 6]]
        stats = PairStats()
        capped = accumulate_pair_counts(
            iter(groups), width, stats=stats, auto_cap=10
        )
        assert stats.auto_cap == 3
        explicit = accumulate_pair_counts(groups, width, cap=3)
        assert capped == explicit

    def test_accumulate_auto_cap_noop_within_budget(self):
        width = 10
        groups = [[0, 1, 2], [3, 4]]
        stats = PairStats()
        uncapped = accumulate_pair_counts(
            iter(groups), width, stats=stats, auto_cap=1000
        )
        assert stats.auto_cap == 0
        assert uncapped == accumulate_pair_counts(groups, width)
