"""Unit tests for the domain substrate (public suffixes, SLD aggregation)."""

import pytest

from repro.domains.names import is_ip_address, normalize_server_name, second_level_domain
from repro.domains.publicsuffix import PublicSuffixList, default_psl


class TestPublicSuffixList:
    def test_simple_com(self):
        assert default_psl().public_suffix("a.b.example.com") == "com"

    def test_multi_label_suffix(self):
        assert default_psl().public_suffix("shop.example.co.uk") == "co.uk"

    def test_free_hosting_suffix(self):
        # The Zeus case study lives under cz.cc (Table X).
        assert default_psl().public_suffix("4k0t155m.cz.cc") == "cz.cc"

    def test_unknown_suffix(self):
        assert default_psl().public_suffix("example.zzinvalid") is None

    def test_registrable_domain_basic(self):
        assert default_psl().registrable_domain("a.b.xyz.com") == "xyz.com"

    def test_registrable_domain_of_bare_suffix(self):
        assert default_psl().registrable_domain("co.uk") is None

    def test_registrable_domain_cz_cc(self):
        assert default_psl().registrable_domain("4k0t155m.cz.cc") == "4k0t155m.cz.cc"

    def test_case_and_dots_normalised(self):
        assert default_psl().registrable_domain("WWW.Example.COM.") == "example.com"

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            PublicSuffixList([])

    def test_from_lines_skips_comments_and_wildcards(self):
        psl = PublicSuffixList.from_lines(
            ["// comment", "", "com", "*.ck", "!www.ck", "co.uk"]
        )
        assert psl.suffixes == frozenset({"com", "co.uk"})


class TestSecondLevelDomain:
    def test_cdn_aggregation(self):
        assert second_level_domain("img3.fbcdn.net") == "fbcdn.net"

    def test_cloud_aggregation(self):
        assert second_level_domain("eu-west.compute.amazonaws.com") == "amazonaws.com"

    def test_paper_example(self):
        # "a.xyz.com and b.xyz.com both belong to xyz.com" (Section III-A).
        assert second_level_domain("a.xyz.com") == second_level_domain("b.xyz.com")

    def test_already_second_level(self):
        assert second_level_domain("xyz.com") == "xyz.com"

    def test_single_label(self):
        assert second_level_domain("localhost") == "localhost"

    def test_unknown_tld_falls_back_to_two_labels(self):
        assert second_level_domain("a.b.example.zzinvalid") == "example.zzinvalid"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            second_level_domain("")


class TestIsIpAddress:
    def test_ipv4(self):
        assert is_ip_address("192.168.1.1")

    def test_ipv6(self):
        assert is_ip_address("::1")

    def test_domain(self):
        assert not is_ip_address("example.com")

    def test_malformed(self):
        assert not is_ip_address("999.1.1.1")


class TestNormalizeServerName:
    def test_ip_passthrough(self):
        assert normalize_server_name("10.0.0.1") == "10.0.0.1"

    def test_domain_aggregated_and_lowercased(self):
        assert normalize_server_name("WWW.Example.COM") == "example.com"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            normalize_server_name("  ")
