"""End-to-end integration tests on the small scenario.

These assert the paper-shape outcomes the reproduction is built around:
planted campaigns recovered, by-design false negatives missed, false
positives confined to the noise categories the paper reports.
"""



def detected_campaign_names(dataset, result):
    names = set()
    for campaign in result.campaigns:
        for server in campaign.servers:
            planted = dataset.truth.campaign_of(server)
            if planted is not None:
                names.add(planted.name)
    return names


class TestCampaignRecovery:
    def test_zeus_recovered_fully(self, small_dataset, small_result):
        zeus = next(c for c in small_dataset.truth.campaigns if c.name == "small-zeus")
        assert zeus.servers <= small_result.detected_servers

    def test_iframe_recovered_fully(self, small_dataset, small_result):
        iframe = next(
            c for c in small_dataset.truth.campaigns if c.name == "small-iframe"
        )
        assert iframe.servers <= small_result.detected_servers

    def test_cnc_recovered(self, small_dataset, small_result):
        cnc = next(c for c in small_dataset.truth.campaigns if c.name == "small-cnc")
        assert cnc.servers <= small_result.detected_servers

    def test_zero_day_detected_before_signatures(self, small_dataset, small_result):
        """The Zeus herd is invisible to 2012 signatures yet SMASH finds it."""
        zeus = next(c for c in small_dataset.truth.campaigns if c.name == "small-zeus")
        ids2012 = small_dataset.ids2012.detected_servers(small_dataset.trace)
        assert not (zeus.servers & ids2012)
        assert zeus.servers <= small_result.detected_servers

    def test_undetectable_campaign_missed(self, small_dataset, small_result):
        """small-fn shares no secondary dimension: a by-design FN
        (Section V-A2's Cycbot/Fake AV analysis)."""
        fn = next(c for c in small_dataset.truth.campaigns if c.name == "small-fn")
        assert not (fn.servers & small_result.detected_servers)

    def test_single_client_campaign_at_higher_thresh(
        self, small_dataset, small_result_single
    ):
        single = next(
            c for c in small_dataset.truth.campaigns if c.name == "small-single"
        )
        assert single.servers <= small_result_single.detected_servers
        campaign = next(
            c for c in small_result_single.campaigns
            if single.servers <= c.servers
        )
        assert campaign.num_clients == 1


class TestFalsePositiveStructure:
    def test_no_pure_benign_server_fp(self, small_dataset, small_result):
        truth = small_dataset.truth
        for server in small_result.detected_servers:
            planted = truth.campaign_of(server)
            if planted is None:
                # Anything unplanted must be a known noise herd or a
                # pruning landing server, never an ordinary benign site.
                category = truth.noise_category.get(server)
                replaced = any(
                    server in c.replaced_servers.values()
                    for c in small_result.campaigns
                )
                assert category is not None or replaced, server

    def test_noise_fp_categories_match_paper(self, small_dataset, small_result):
        """FPs concentrate in the paper's two categories (torrent and
        collaboration pools)."""
        truth = small_dataset.truth
        fp_categories = {
            truth.noise_category[server]
            for server in small_result.detected_servers
            if server in truth.noise_category
        }
        assert fp_categories <= {"torrent", "collaboration", "redirect", "referrer"}

    def test_referrer_groups_pruned(self, small_dataset, small_result):
        """Embedded third-party herds collapse to their landing server."""
        truth = small_dataset.truth
        referrer_servers = {
            server for server, cat in truth.noise_category.items()
            if cat == "referrer"
        }
        assert not (referrer_servers & small_result.detected_servers)


class TestHerdStructure:
    def test_every_dimension_produced_herds(self, small_result):
        for dimension in ("client", "urifile", "ipset", "whois"):
            assert dimension in small_result.herds_by_dimension

    def test_main_dimension_dropped_nonempty(self, small_result):
        # Section V-C1: a large share of servers cannot be correlated.
        assert len(small_result.main_dimension_dropped) > 0

    def test_herd_densities_valid(self, small_result):
        for herds in small_result.herds_by_dimension.values():
            for herd in herds:
                assert 0.0 <= herd.density <= 1.0
                assert len(herd.servers) >= 2


class TestCampaignMerging:
    def test_zeus_campaign_is_one_campaign(self, small_dataset, small_result):
        zeus = next(c for c in small_dataset.truth.campaigns if c.name == "small-zeus")
        owners = {
            campaign.campaign_id
            for campaign in small_result.campaigns
            if campaign.servers & zeus.servers
        }
        assert len(owners) == 1

    def test_campaign_clients_from_trace(self, small_dataset, small_result):
        from repro.domains.names import normalize_server_name
        aggregated = small_dataset.trace.map_hosts(normalize_server_name)
        for campaign in small_result.campaigns:
            expected = set()
            for server in campaign.servers:
                expected |= aggregated.clients_by_server.get(server, frozenset())
            assert campaign.clients == frozenset(expected)
