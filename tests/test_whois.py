"""Unit tests for the Whois substrate."""

import pytest

from repro.whois.record import WHOIS_FIELDS, WhoisRecord
from repro.whois.registry import WhoisRegistry


def record(domain="example.com", **overrides):
    defaults = dict(
        registrant="John Doe",
        address="1 Main St",
        email="admin@example.com",
        phone="+1.5551234",
        name_servers=("ns1.dns.com", "ns2.dns.com"),
    )
    defaults.update(overrides)
    return WhoisRecord(domain=domain, **defaults)


class TestWhoisRecord:
    def test_name_servers_sorted(self):
        r = record(name_servers=("ns2.x.com", "ns1.x.com"))
        assert r.name_servers == ("ns1.x.com", "ns2.x.com")

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            WhoisRecord(domain="")

    def test_field_value_unknown_field(self):
        with pytest.raises(KeyError):
            record().field_value("created")

    def test_shared_fields_identical(self):
        assert record().shared_fields(record(domain="other.com")) == WHOIS_FIELDS

    def test_shared_fields_figure5_case(self):
        # Figure 5: different registrants, same address/phone/name servers.
        a = record(registrant="Alice")
        b = record(domain="other.com", registrant="Bob", email="bob@other.com")
        shared = a.shared_fields(b)
        assert "registrant" not in shared
        assert "email" not in shared
        assert set(shared) == {"address", "phone", "name_servers"}

    def test_empty_values_never_shared(self):
        a = record(phone="")
        b = record(domain="o.com", phone="")
        assert "phone" not in a.shared_fields(b)

    def test_present_fields(self):
        r = record(phone="", email="")
        assert set(r.present_fields()) == {"registrant", "address", "name_servers"}


class TestWhoisRegistry:
    def test_lookup_case_insensitive(self):
        registry = WhoisRegistry([record()])
        assert registry.lookup("EXAMPLE.COM") is not None

    def test_lookup_missing(self):
        assert WhoisRegistry().lookup("nope.com") is None

    def test_overwrite(self):
        registry = WhoisRegistry([record(registrant="Old")])
        registry.add(record(registrant="New"))
        assert registry.lookup("example.com").registrant == "New"
        assert len(registry) == 1

    def test_contains(self):
        registry = WhoisRegistry([record()])
        assert "example.com" in registry
        assert "other.com" not in registry

    def test_merged_with(self):
        a = WhoisRegistry([record()])
        b = WhoisRegistry([record(domain="other.com")])
        merged = a.merged_with(b)
        assert len(merged) == 2
        assert len(a) == 1  # originals untouched
