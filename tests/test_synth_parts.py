"""Tests for the synthetic-trace building blocks: benign universe,
campaign planting, noise herds, oracles."""

import pytest

from repro.synth.benign import UBIQUITOUS_FILES, BenignUniverse
from repro.synth.campaigns import NoiseSpec
from repro.synth.malicious import plant_campaign
from repro.synth.noise import build_noise
from repro.synth.oracles import HostLiveness, RedirectOracle
from repro.synth.scenarios import (
    generic_cnc,
    iframe_injection,
    tdss_like,
    zeus_like,
)


class TestBenignUniverse:
    @pytest.fixture(scope="class")
    def universe(self):
        return BenignUniverse(seed=1, num_popular=3, num_medium=10, num_longtail=30)

    def test_site_count(self, universe):
        assert len(universe.sites) == 43

    def test_popularity_ordering(self, universe):
        weights = [site.weight for site in universe.sites]
        assert weights == sorted(weights, reverse=True)

    def test_popular_sites_have_subdomains(self, universe):
        assert len(universe.sites[0].hosts) > 2

    def test_ubiquitous_files_everywhere(self, universe):
        for site in universe.sites:
            assert set(UBIQUITOUS_FILES) <= set(site.files)

    def test_whois_coverage(self, universe):
        records = universe.whois_records()
        assert {r.domain for r in records} == universe.domains

    def test_some_proxy_registrations(self, universe):
        records = universe.whois_records()
        assert any(r.is_proxy for r in records)
        assert any(not r.is_proxy for r in records)

    def test_browse_deterministic(self, universe):
        a = universe.browse_day(["c1", "c2"], day=0, sites_per_client_mean=3.0)
        b = universe.browse_day(["c1", "c2"], day=0, sites_per_client_mean=3.0)
        assert a == b

    def test_browse_day_key_changes_traffic(self, universe):
        a = universe.browse_day(["c1"], day=0, sites_per_client_mean=3.0)
        b = universe.browse_day(["c1"], day=1, sites_per_client_mean=3.0)
        assert a != b

    def test_visits_start_with_landing_page(self, universe):
        requests = universe.browse_day(["c1"], day=0, sites_per_client_mean=3.0)
        first_by_host = {}
        for request in requests:
            first_by_host.setdefault(request.host, request.uri)
        assert all(uri == "/index.html" for uri in first_by_host.values())

    def test_empty_universe_rejected(self):
        with pytest.raises(Exception):
            BenignUniverse(seed=1, num_popular=0, num_medium=0, num_longtail=0)


class TestPlantCampaign:
    def plant(self, spec, day=0):
        clients = [f"bot{i}" for i in range(spec.num_clients)]
        return plant_campaign(spec, clients, seed=9, day=day,
                              background_clients=["bg1", "bg2", "bg3"])

    def test_server_count(self):
        result = self.plant(zeus_like(name="z"))
        assert len(result.planted.servers) == 8

    def test_all_clients_recorded(self):
        spec = zeus_like(name="z", num_clients=2)
        result = self.plant(spec)
        assert result.planted.clients == {"bot0", "bot1"}

    def test_ids_fractions(self):
        spec = generic_cnc("g", 2, 10, ids2012_fraction=0.3, ids2013_fraction=0.5,
                           blacklist_fraction=0.0)
        result = self.plant(spec)
        servers_2012 = {s.server for s in result.signatures_2012}
        servers_2013 = {s.server for s in result.signatures_2013}
        assert len(servers_2012) == 3
        assert len(servers_2013) == 5
        assert servers_2012 <= servers_2013

    def test_persistent_servers_stable_across_days(self):
        spec = zeus_like(name="z")
        assert self.plant(spec, day=0).planted.servers == self.plant(spec, day=3).planted.servers

    def test_agile_servers_rotate(self):
        spec = generic_cnc("g", 2, 5, agile=True)
        assert self.plant(spec, day=0).planted.servers != self.plant(spec, day=1).planted.servers

    def test_traffic_carries_campaign_protocol(self):
        spec = zeus_like(name="z")
        result = self.plant(spec)
        campaign_requests = [
            r for r in result.requests if r.client.startswith("bot")
        ]
        assert all(r.uri_file == "login.php" for r in campaign_requests)

    def test_obfuscated_tier_long_filenames(self):
        result = self.plant(tdss_like(name="t"))
        files = {r.uri_file for r in result.requests if r.client.startswith("bot")}
        assert all(len(f) > 25 for f in files)
        assert len(files) == 6  # one per server

    def test_compromised_victims_not_marked_dead(self):
        result = self.plant(iframe_injection(name="i", victims=10, num_clients=2))
        assert result.dead_servers == []

    def test_dead_fraction_applies(self):
        spec = generic_cnc("g", 2, 10, dead_fraction=1.0)
        result = self.plant(spec)
        assert len(result.dead_servers) == 10

    def test_client_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            plant_campaign(zeus_like(name="z", num_clients=2), ["only-one"], seed=1, day=0)

    def test_shared_ip_tier(self):
        spec = zeus_like(name="z")  # share_ips with 2 IPs
        result = self.plant(spec)
        ips = {r.server_ip for r in result.requests if r.client.startswith("bot")}
        assert len(ips) <= 2


class TestNoise:
    def make(self, **kwargs):
        spec = NoiseSpec(**kwargs)
        return build_noise(
            spec,
            torrent_clients=["t1", "t2", "t3"],
            collaboration_clients=["k1", "k2", "k3", "k4"],
            browsing_clients=[f"b{i}" for i in range(20)],
            seed=4,
            day=0,
        )

    def test_torrent_shares_scrape_file(self):
        result = self.make(torrent_clients=3, torrent_trackers=6)
        tracker_requests = [r for r in result.requests if "tracker" in r.host]
        assert all(r.uri_file == "scrape.php" for r in tracker_requests)
        assert set(result.category_of.values()) == {"torrent"}

    def test_collaboration_pool_shares_file(self):
        result = self.make(collaboration_pools=1, collaboration_pool_size=5,
                           collaboration_clients=4)
        relay_requests = [r for r in result.requests if "relay" in r.host]
        assert all(r.uri_file == "din.aspx" for r in relay_requests)

    def test_referrer_group_sets_referer_header(self):
        result = self.make(referrer_groups=1, referrer_group_size=4)
        embedded = [r for r in result.requests if r.referrer and "assets" in r.uri]
        assert embedded
        referrers = {r.referrer for r in embedded}
        assert len(referrers) == 1

    def test_redirect_chains_recorded(self):
        result = self.make(redirect_chains=2, redirect_chain_length=3)
        assert len(result.redirect_chains) == 2
        assert all(len(chain) == 3 for chain in result.redirect_chains)
        # Non-landing hops share the redirector script.
        hops = [r for r in result.requests if r.status == 302]
        assert all(r.uri_file == "go.php" for r in hops)

    def test_shared_hosting_single_ip_per_group(self):
        result = self.make(shared_hosting_groups=1, shared_hosting_group_size=4)
        hosted = [
            r for r in result.requests
            if result.category_of.get(r.host) == "shared_hosting"
        ]
        assert len({r.server_ip for r in hosted}) == 1


class TestOracles:
    def test_redirect_oracle(self):
        oracle = RedirectOracle()
        oracle.add_chain(["a.to", "b.to", "land.com"])
        assert oracle.landing_server("a.to") == "land.com"
        assert oracle.landing_server("land.com") == "land.com"
        assert oracle.landing_server("other.com") is None
        assert oracle.on_chain("b.to")
        assert oracle.chain_members() == frozenset({"a.to", "b.to", "land.com"})

    def test_redirect_oracle_short_chain_rejected(self):
        with pytest.raises(ValueError):
            RedirectOracle().add_chain(["only.com"])

    def test_liveness(self):
        liveness = HostLiveness(dead=["gone.com"])
        assert not liveness.is_alive("gone.com")
        assert liveness.is_alive("here.com")
        liveness.mark_dead("here.com")
        assert not liveness.is_alive("here.com")
