"""Sharded map-reduce mine == single-shard mine, byte for byte (PR 7).

The mine path gained a shard-parallel mode (:mod:`repro.core.shardmine`):
per-shard index extraction against the namespace-stable
:class:`~repro.core.interning.StableInterner`, spill-to-store partials,
and partition-parallel pair counting, merged deterministically into the
existing graph → Louvain → correlate path.  The mode's contract is that
``--shards N`` output is **byte-identical** to the single-shard mine for
every shard count and every ``PYTHONHASHSEED`` — the in-process classes
below pin each mechanism (shard planning, stable interning, spill
verification, bucketed pair accumulation, prepared-trace assembly), and
the subprocess matrix at the bottom enforces the end-to-end property the
way :mod:`tests.test_determinism` does for the single-shard core.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

from collections import Counter
from pathlib import Path

import pytest

from repro.config import SmashConfig
from repro.core.interning import (
    PairStats,
    StableInterner,
    accumulate_pair_counts,
    stable_label_id,
)
from repro.core.pipeline import DimensionCache, SmashPipeline
from repro.core.preprocess import preprocess
from repro.core.shardmine import ShardedAccumulator, shard_ranges
from repro.errors import ConfigError, PipelineError, StreamError
from repro.eval.export import result_to_dict
from repro.stream import StreamingSmash
from repro.stream.store import PartialStore, TraceStore
from repro.synth.generator import TraceGenerator
from repro.synth.scenarios import small_scenario
from repro.util.parallel import JobPool

SRC_DIR = Path(__file__).resolve().parent.parent / "src"

#: Shard counts from the acceptance criteria: trivial, even, and a prime
#: that never divides the request count evenly.
SHARD_COUNTS = (1, 2, 7)
HASH_SEEDS = (1, 2, 3)


@pytest.fixture(scope="module")
def dataset():
    return TraceGenerator(small_scenario(seed=7)).generate_day(0)


@pytest.fixture(scope="module")
def prepared(dataset):
    trace, _ = preprocess(dataset.trace)
    return trace


def result_doc(result) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True)


# -- shard planning -----------------------------------------------------------------


class TestShardRanges:
    def test_even_split_covers_contiguously(self):
        ranges = shard_ranges(10, 3)
        assert ranges == [(0, 3), (3, 6), (6, 10)]
        assert ranges[0][0] == 0 and ranges[-1][1] == 10
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start

    def test_more_shards_than_requests_clamps(self):
        assert shard_ranges(2, 7) == [(0, 1), (1, 2)]

    def test_empty_trace(self):
        assert shard_ranges(0, 4) == []

    def test_single_shard(self):
        assert shard_ranges(5, 1) == [(0, 5)]

    def test_day_boundaries_align_cuts(self):
        # 3 days of 10/20/30 requests into 2 shards: cuts fall only on
        # day edges, never mid-day.
        assert shard_ranges(60, 2, boundaries=(10, 20, 30)) == [(0, 10), (10, 60)]

    def test_fewer_days_than_shards_yields_day_shards(self):
        assert shard_ranges(30, 5, boundaries=(10, 20)) == [(0, 10), (10, 30)]

    def test_mismatched_boundaries_fall_back_to_even_split(self):
        # Boundaries that do not sum to the trace length are stale
        # (e.g. a filtered trace) — ignore them rather than mis-cut.
        assert shard_ranges(10, 2, boundaries=(3, 3)) == shard_ranges(10, 2)

    def test_config_rejects_non_positive_shards(self):
        with pytest.raises(ConfigError):
            SmashConfig().replace(shards=0).validate()


# -- namespace-stable interning -----------------------------------------------------


class TestStableInterner:
    def test_ids_agree_across_independent_instances(self):
        labels = ["alpha.example", "beta.example", "gamma.example"]
        one, two = StableInterner(), StableInterner()
        first = [one.intern(label) for label in labels]
        second = [two.intern(label) for label in reversed(labels)]
        assert first == list(reversed(second))
        assert first == [stable_label_id(label) for label in labels]

    def test_merge_unions_disjoint_and_overlapping_vocabularies(self):
        one, two = StableInterner(), StableInterner()
        one.intern("a.example")
        one.intern("b.example")
        two.intern("b.example")
        two.intern("c.example")
        one.merge(two.to_dict())
        assert sorted(one.to_dict().values()) == ["a.example", "b.example", "c.example"]

    def test_merge_collision_raises(self):
        interner = StableInterner()
        sid = interner.intern("a.example")
        with pytest.raises(PipelineError, match="collision"):
            interner.merge({sid: "b.example"})

    def test_intern_collision_raises(self, monkeypatch):
        import repro.core.interning as interning

        monkeypatch.setattr(interning, "stable_label_id", lambda label: 42)
        interner = StableInterner()
        interner.intern("a.example")
        with pytest.raises(PipelineError, match="collision"):
            interner.intern("b.example")

    def test_to_interner_is_dense_and_canonical(self):
        interner = StableInterner()
        for label in ("zz.example", "aa.example", "mm.example"):
            interner.intern(label)
        dense = interner.to_interner()
        assert [dense.label_of(i) for i in range(3)] == ["aa.example", "mm.example", "zz.example"]


# -- spill store --------------------------------------------------------------------


class TestPartialStore:
    def test_put_load_roundtrip(self, tmp_path):
        store = PartialStore(tmp_path / "spill")
        payload = {"counts": [[1, 2]], "nested": {"a": 1}}
        digest, spilled = store.put("index-0000", payload)
        assert spilled == store.path_of("index-0000").stat().st_size
        assert store.load("index-0000", digest) == payload

    def test_corrupt_partial_raises(self, tmp_path):
        store = PartialStore(tmp_path / "spill")
        digest, _ = store.put("index-0000", {"counts": []})
        path = store.path_of("index-0000")
        path.write_bytes(path.read_bytes() + b" ")
        with pytest.raises(StreamError, match="corrupt"):
            store.load("index-0000", digest)

    def test_missing_partial_raises(self, tmp_path):
        store = PartialStore(tmp_path / "spill")
        with pytest.raises(StreamError, match="missing"):
            store.load("index-9999", "0" * 64)

    def test_delete_and_cleanup(self, tmp_path):
        store = PartialStore(tmp_path / "spill")
        store.put("pairs-client-0000", {"counts": []})
        store.delete("pairs-client-0000")
        store.delete("pairs-client-0000")  # idempotent
        store.cleanup()
        assert not (tmp_path / "spill").exists()


# -- shared pool --------------------------------------------------------------------


class TestJobPool:
    def test_serial_run_preserves_job_order(self):
        with JobPool(workers=1) as pool:
            assert not pool.parallel
            assert pool.run([lambda i=i: i * i for i in range(5)]) == [0, 1, 4, 9, 16]

    def test_pool_reused_across_batches(self):
        with JobPool(workers=2, executor="thread") as pool:
            first = pool.run([lambda: "a", lambda: "b"])
            second = pool.run([lambda: "c"])
        assert first == ["a", "b"]
        assert second == ["c"]

    def test_empty_batch(self):
        with JobPool(workers=2, executor="thread") as pool:
            assert pool.run([]) == []


# -- partition-parallel pair counting -----------------------------------------------


class TestShardedAccumulator:
    GROUPS = [
        [0, 1, 2],
        [1, 2, 3, 4],
        [0, 4],
        [2],
        [0, 1, 2, 3, 4, 5],
        [3, 5],
        [1, 4, 5],
    ]
    WIDTH = 6

    def _sharded(self, buckets: int, cap: int, tmp_path) -> tuple[Counter, PairStats]:
        stats = PairStats()
        with JobPool(workers=1) as pool:
            accumulate = ShardedAccumulator(pool, buckets, tmp_path / "spill", "client")
            counts = accumulate(self.GROUPS, self.WIDTH, cap=cap, stats=stats)
        return counts, stats

    @pytest.mark.parametrize("buckets", [1, 3, 7])
    def test_counts_and_stats_match_single_pass(self, buckets, tmp_path):
        expected_stats = PairStats()
        expected = accumulate_pair_counts(self.GROUPS, self.WIDTH, stats=expected_stats)
        counts, stats = self._sharded(buckets, 0, tmp_path)
        assert counts == expected
        assert stats == expected_stats

    def test_cap_applies_identically(self, tmp_path):
        expected_stats = PairStats()
        expected = accumulate_pair_counts(self.GROUPS, self.WIDTH, cap=3, stats=expected_stats)
        counts, stats = self._sharded(3, 3, tmp_path)
        assert counts == expected
        assert stats == expected_stats
        assert stats.skipped_groups > 0  # the cap actually gated groups

    def test_partials_deleted_after_merge(self, tmp_path):
        self._sharded(3, 0, tmp_path)
        assert list((tmp_path / "spill").iterdir()) == []


# -- per-dimension graph equality ---------------------------------------------------


class TestSecondaryGraphEquality:
    """Each builder mines the identical topology under a sharded
    accumulator — the per-dimension half of the byte-identity contract."""

    @pytest.mark.parametrize("dimension", ["urifile", "ipset", "whois"])
    def test_default_dimensions(self, dimension, prepared, dataset, tmp_path):
        from repro.core.dimensions.ipset import build_ipset_graph
        from repro.core.dimensions.urifile import build_urifile_graph
        from repro.core.dimensions.whoisdim import build_whois_graph

        with JobPool(workers=1) as pool:
            accumulate = ShardedAccumulator(pool, 3, tmp_path / "spill", dimension)
            if dimension == "urifile":
                sharded = build_urifile_graph(prepared, accumulate=accumulate)
                plain = build_urifile_graph(prepared)
            elif dimension == "ipset":
                sharded = build_ipset_graph(prepared, accumulate=accumulate)
                plain = build_ipset_graph(prepared)
            else:
                sharded = build_whois_graph(prepared, dataset.whois, accumulate=accumulate)
                plain = build_whois_graph(prepared, dataset.whois)
        assert sharded == plain
        assert sharded.nodes == plain.nodes  # same canonical order

    def test_optin_dimensions(self, prepared, tmp_path):
        from repro.core.dimensions.timedim import build_time_graph
        from repro.core.dimensions.urlparam import build_urlparam_graph

        with JobPool(workers=1) as pool:
            for dimension, builder in (
                ("urlparam", build_urlparam_graph),
                ("time", build_time_graph),
            ):
                accumulate = ShardedAccumulator(pool, 3, tmp_path / "spill", dimension)
                assert builder(prepared, accumulate=accumulate) == builder(prepared)


# -- mine / run equivalence ---------------------------------------------------------


class TestMineEquivalence:
    def test_mined_dimensions_equal_single_shard(self, dataset):
        pipeline = SmashPipeline()
        base = pipeline.mine(dataset.trace, whois=dataset.whois)
        sharded = pipeline.mine(dataset.trace, whois=dataset.whois, shards=3)
        assert sharded.trace.name == base.trace.name
        assert sharded.trace.requests == base.trace.requests
        assert sharded.preprocess_report == base.preprocess_report
        # The injected inverted indexes must equal the lazily-built ones.
        assert sharded.trace.clients_by_server == base.trace.clients_by_server
        assert sharded.trace.ips_by_server == base.trace.ips_by_server
        assert sharded.trace.files_by_server == base.trace.files_by_server
        assert sharded.trace.servers_by_client == base.trace.servers_by_client
        assert sharded.trace.servers == base.trace.servers
        assert sharded.main == base.main
        assert sharded.secondary == base.secondary
        assert sharded.interner is not None
        assert sharded.interner.labels == base.interner.labels

    @pytest.mark.parametrize("shards", SHARD_COUNTS[1:])
    def test_run_byte_identical(self, dataset, shards):
        kwargs = dict(whois=dataset.whois, redirects=dataset.redirects)
        base = SmashPipeline().run(dataset.trace, **kwargs)
        config = SmashConfig().replace(shards=shards)
        sharded = SmashPipeline(config).run(dataset.trace, **kwargs)
        assert result_doc(sharded) == result_doc(base)
        assert sharded.scores == base.scores  # raw floats, not rounded
        assert sharded.campaigns == base.campaigns

    def test_all_dimensions_enabled_byte_identical(self, dataset):
        config = SmashConfig(
            enabled_secondary_dimensions=("urifile", "ipset", "whois", "urlparam", "time")
        )
        kwargs = dict(whois=dataset.whois, redirects=dataset.redirects)
        base = SmashPipeline(config).run(dataset.trace, **kwargs)
        sharded = SmashPipeline(config.replace(shards=3)).run(dataset.trace, **kwargs)
        assert result_doc(sharded) == result_doc(base)

    def test_process_executor_byte_identical(self, dataset):
        kwargs = dict(whois=dataset.whois, redirects=dataset.redirects)
        base = SmashPipeline().run(dataset.trace, **kwargs)
        config = SmashConfig().replace(shards=3, workers=2, executor="process")
        sharded = SmashPipeline(config).run(dataset.trace, **kwargs)
        assert result_doc(sharded) == result_doc(base)

    def test_dimension_cache_interop(self, dataset):
        # Signatures are computed on the assembled prepared trace, so a
        # sharded mine must hit the cache entries a single-shard mine
        # wrote — and vice versa.
        pipeline = SmashPipeline()
        cache = DimensionCache()
        base = pipeline.mine(dataset.trace, whois=dataset.whois, cache=cache)
        assert cache.last_mined  # first mine populated the cache
        sharded = pipeline.mine(dataset.trace, whois=dataset.whois, cache=cache, shards=3)
        assert not cache.last_mined  # everything reused
        expected = {"client", *pipeline.config.enabled_secondary_dimensions}
        assert set(cache.last_reused) == expected
        assert sharded.main == base.main
        assert sharded.secondary == base.secondary


# -- streaming ----------------------------------------------------------------------


class TestStreamEquivalence:
    @staticmethod
    def _stream_three_days(tmp_path, label: str, shards: int):
        store_dir = tmp_path / f"store_{label}"
        engine = StreamingSmash(window_size=2, shards=shards, store_dir=store_dir)
        generator = TraceGenerator(small_scenario(seed=7, days=3))
        docs = []
        for dataset in generator.iter_days():
            update = engine.ingest_dataset(dataset)
            docs.append(result_doc(update.result))
        engine.close()
        return docs, store_dir

    def test_store_backed_stream_byte_identical_and_spill_cleaned(self, tmp_path):
        base_docs, _ = self._stream_three_days(tmp_path, "base", 1)
        sharded_docs, store_dir = self._stream_three_days(tmp_path, "sharded", 4)
        assert sharded_docs == base_docs
        # Partials spill under the store but are transient per-mine
        # state: nothing may survive the mine that wrote it.
        partials = TraceStore(store_dir).partials_dir()
        assert not partials.exists() or list(partials.iterdir()) == []


# -- subprocess matrix: hash seeds x shard counts -----------------------------------
#
# In-process tests cannot vary PYTHONHASHSEED (one interpreter has one
# hash seed), so the end-to-end acceptance criterion — `--shards N` is
# byte-identical under *any* hash seed — runs the CLI in pinned
# subprocesses, mirroring tests/test_determinism.py.


def _run_python(args: list[str], hash_seed: int, cwd: Path) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = str(SRC_DIR) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, *args],
        env=env,
        cwd=cwd,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"subprocess failed under PYTHONHASHSEED={hash_seed}:\n"
        f"{completed.stdout}\n{completed.stderr}"
    )
    return completed.stdout


@pytest.fixture(scope="module")
def day_dir(tmp_path_factory) -> Path:
    target = tmp_path_factory.mktemp("shardmine") / "day0"
    _run_python(
        ["-m", "repro", "generate", "--scenario", "small", "--out", str(target)],
        hash_seed=0,
        cwd=target.parent,
    )
    return target


def test_run_is_shard_and_seed_invariant(day_dir: Path, tmp_path: Path) -> None:
    """`repro run --shards N` writes byte-identical campaign JSON for
    every (shard count, hash seed) combination."""
    outputs: dict[tuple[int, int], bytes] = {}
    for shards in SHARD_COUNTS:
        for seed in HASH_SEEDS if shards > 1 else HASH_SEEDS[:1]:
            out = tmp_path / f"campaigns_{shards}_{seed}.json"
            _run_python(
                [
                    "-m",
                    "repro",
                    "run",
                    "--trace",
                    str(day_dir / "trace.jsonl"),
                    "--whois",
                    str(day_dir / "whois.json"),
                    "--redirects",
                    str(day_dir / "redirects.json"),
                    "--shards",
                    str(shards),
                    "--out",
                    str(out),
                ],
                hash_seed=seed,
                cwd=tmp_path,
            )
            outputs[(shards, seed)] = out.read_bytes()
    baseline = outputs[(1, HASH_SEEDS[0])]
    assert b'"campaigns"' in baseline
    for key, produced in outputs.items():
        assert produced == baseline, f"campaign JSON diverged for (shards, seed)={key}"


def test_stream_is_shard_and_seed_invariant(tmp_path: Path) -> None:
    """A 3-day `repro stream --shards N` (window 2, store-backed) writes
    byte-identical summary and campaign JSON at any seed."""
    outputs: dict[tuple[int, int], bytes] = {}
    matrix = [(1, HASH_SEEDS[0])] + list(zip(SHARD_COUNTS[1:], HASH_SEEDS[1:]))
    for shards, seed in matrix:
        label = f"{shards}_{seed}"
        summary = tmp_path / f"summary_{label}.json"
        campaigns = tmp_path / f"campaigns_{label}.json"
        _run_python(
            [
                "-m",
                "repro",
                "stream",
                "--scenario",
                "small",
                "--days",
                "3",
                "--window",
                "2",
                "--store",
                str(tmp_path / f"store_{label}"),
                "--shards",
                str(shards),
                "--out",
                str(summary),
                "--campaigns-out",
                str(campaigns),
            ],
            hash_seed=seed,
            cwd=tmp_path,
        )
        outputs[(shards, seed)] = summary.read_bytes() + b"\n--\n" + campaigns.read_bytes()
    baseline = outputs[matrix[0]]
    assert b'"campaigns"' in baseline
    for key, produced in outputs.items():
        assert produced == baseline, f"stream JSON diverged for (shards, seed)={key}"
