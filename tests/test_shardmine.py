"""Sharded map-reduce mine == single-shard mine, byte for byte (PR 7).

The mine path gained a shard-parallel mode (:mod:`repro.core.shardmine`):
per-shard index extraction against the namespace-stable
:class:`~repro.core.interning.StableInterner`, spill-to-store partials,
and partition-parallel pair counting, merged deterministically into the
existing graph → Louvain → correlate path.  The mode's contract is that
``--shards N`` output is **byte-identical** to the single-shard mine for
every shard count and every ``PYTHONHASHSEED`` — the in-process classes
below pin each mechanism (shard planning, stable interning, spill
verification, bucketed pair accumulation, prepared-trace assembly), and
the subprocess matrix at the bottom enforces the end-to-end property the
way :mod:`tests.test_determinism` does for the single-shard core.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

from collections import Counter
from pathlib import Path

import pytest

from repro.config import SmashConfig
from repro.core.interning import (
    PairStats,
    StableInterner,
    accumulate_pair_counts,
    stable_label_id,
)
from repro.core.pipeline import DimensionCache, SmashPipeline
from repro.core.preprocess import preprocess
from repro.core.shardmine import (
    IndexOnlyTrace,
    ShardedAccumulator,
    run_shard_job,
    shard_ranges,
)
from repro.errors import ConfigError, PipelineError, StreamError
from repro.eval.export import result_to_dict
from repro.stream import StreamingSmash
from repro.stream.store import PartialStore, TraceStore
from repro.synth.generator import TraceGenerator
from repro.synth.scenarios import small_scenario
from repro.util.parallel import JobPool

SRC_DIR = Path(__file__).resolve().parent.parent / "src"

#: Shard counts from the acceptance criteria: trivial, even, and a prime
#: that never divides the request count evenly.
SHARD_COUNTS = (1, 2, 7)
HASH_SEEDS = (1, 2, 3)


@pytest.fixture(scope="module")
def dataset():
    return TraceGenerator(small_scenario(seed=7)).generate_day(0)


@pytest.fixture(scope="module")
def prepared(dataset):
    trace, _ = preprocess(dataset.trace)
    return trace


def result_doc(result) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True)


# -- shard planning -----------------------------------------------------------------


class TestShardRanges:
    def test_even_split_covers_contiguously(self):
        ranges = shard_ranges(10, 3)
        assert ranges == [(0, 3), (3, 6), (6, 10)]
        assert ranges[0][0] == 0 and ranges[-1][1] == 10
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start

    def test_more_shards_than_requests_clamps(self):
        assert shard_ranges(2, 7) == [(0, 1), (1, 2)]

    def test_empty_trace(self):
        assert shard_ranges(0, 4) == []

    def test_single_shard(self):
        assert shard_ranges(5, 1) == [(0, 5)]

    def test_day_boundaries_align_cuts(self):
        # 3 days of 10/20/30 requests into 2 shards: cuts fall only on
        # day edges, never mid-day.
        assert shard_ranges(60, 2, boundaries=(10, 20, 30)) == [(0, 10), (10, 60)]

    def test_fewer_days_than_shards_yields_day_shards(self):
        assert shard_ranges(30, 5, boundaries=(10, 20)) == [(0, 10), (10, 30)]

    def test_mismatched_boundaries_fall_back_to_even_split(self):
        # Boundaries that do not sum to the trace length are stale
        # (e.g. a filtered trace) — ignore them rather than mis-cut.
        assert shard_ranges(10, 2, boundaries=(3, 3)) == shard_ranges(10, 2)

    def test_config_rejects_non_positive_shards(self):
        with pytest.raises(ConfigError):
            SmashConfig().replace(shards=0).validate()


# -- namespace-stable interning -----------------------------------------------------


class TestStableInterner:
    def test_ids_agree_across_independent_instances(self):
        labels = ["alpha.example", "beta.example", "gamma.example"]
        one, two = StableInterner(), StableInterner()
        first = [one.intern(label) for label in labels]
        second = [two.intern(label) for label in reversed(labels)]
        assert first == list(reversed(second))
        assert first == [stable_label_id(label) for label in labels]

    def test_merge_unions_disjoint_and_overlapping_vocabularies(self):
        one, two = StableInterner(), StableInterner()
        one.intern("a.example")
        one.intern("b.example")
        two.intern("b.example")
        two.intern("c.example")
        one.merge(two.to_dict())
        assert sorted(one.to_dict().values()) == ["a.example", "b.example", "c.example"]

    def test_merge_collision_raises(self):
        interner = StableInterner()
        sid = interner.intern("a.example")
        with pytest.raises(PipelineError, match="collision"):
            interner.merge({sid: "b.example"})

    def test_intern_collision_raises(self, monkeypatch):
        import repro.core.interning as interning

        monkeypatch.setattr(interning, "stable_label_id", lambda label: 42)
        interner = StableInterner()
        interner.intern("a.example")
        with pytest.raises(PipelineError, match="collision"):
            interner.intern("b.example")

    def test_to_interner_is_dense_and_canonical(self):
        interner = StableInterner()
        for label in ("zz.example", "aa.example", "mm.example"):
            interner.intern(label)
        dense = interner.to_interner()
        assert [dense.label_of(i) for i in range(3)] == ["aa.example", "mm.example", "zz.example"]


# -- spill store --------------------------------------------------------------------


class TestPartialStore:
    def test_put_load_roundtrip(self, tmp_path):
        store = PartialStore(tmp_path / "spill")
        payload = {"counts": [[1, 2]], "nested": {"a": 1}}
        digest, spilled = store.put("index-0000", payload)
        assert spilled == store.path_of("index-0000").stat().st_size
        assert store.load("index-0000", digest) == payload

    def test_corrupt_partial_raises(self, tmp_path):
        store = PartialStore(tmp_path / "spill")
        digest, _ = store.put("index-0000", {"counts": []})
        path = store.path_of("index-0000")
        path.write_bytes(path.read_bytes() + b" ")
        with pytest.raises(StreamError, match="corrupt"):
            store.load("index-0000", digest)

    def test_missing_partial_raises(self, tmp_path):
        store = PartialStore(tmp_path / "spill")
        with pytest.raises(StreamError, match="missing"):
            store.load("index-9999", "0" * 64)

    def test_delete_and_cleanup(self, tmp_path):
        store = PartialStore(tmp_path / "spill")
        store.put("pairs-client-0000", {"counts": []})
        store.delete("pairs-client-0000")
        store.delete("pairs-client-0000")  # idempotent
        store.cleanup()
        assert not (tmp_path / "spill").exists()


# -- shared pool --------------------------------------------------------------------


class TestJobPool:
    def test_serial_run_preserves_job_order(self):
        with JobPool(workers=1) as pool:
            assert not pool.parallel
            assert pool.run([lambda i=i: i * i for i in range(5)]) == [0, 1, 4, 9, 16]

    def test_pool_reused_across_batches(self):
        with JobPool(workers=2, executor="thread") as pool:
            first = pool.run([lambda: "a", lambda: "b"])
            second = pool.run([lambda: "c"])
        assert first == ["a", "b"]
        assert second == ["c"]

    def test_empty_batch(self):
        with JobPool(workers=2, executor="thread") as pool:
            assert pool.run([]) == []


# -- partition-parallel pair counting -----------------------------------------------


class TestShardedAccumulator:
    GROUPS = [
        [0, 1, 2],
        [1, 2, 3, 4],
        [0, 4],
        [2],
        [0, 1, 2, 3, 4, 5],
        [3, 5],
        [1, 4, 5],
    ]
    WIDTH = 6

    def _sharded(self, buckets: int, cap: int, tmp_path) -> tuple[Counter, PairStats]:
        stats = PairStats()
        with JobPool(workers=1) as pool:
            accumulate = ShardedAccumulator(pool, buckets, tmp_path / "spill", "client")
            counts = accumulate(self.GROUPS, self.WIDTH, cap=cap, stats=stats)
        return counts, stats

    @pytest.mark.parametrize("buckets", [1, 3, 7])
    def test_counts_and_stats_match_single_pass(self, buckets, tmp_path):
        expected_stats = PairStats()
        expected = accumulate_pair_counts(self.GROUPS, self.WIDTH, stats=expected_stats)
        counts, stats = self._sharded(buckets, 0, tmp_path)
        assert counts == expected
        assert stats == expected_stats

    def test_cap_applies_identically(self, tmp_path):
        expected_stats = PairStats()
        expected = accumulate_pair_counts(self.GROUPS, self.WIDTH, cap=3, stats=expected_stats)
        counts, stats = self._sharded(3, 3, tmp_path)
        assert counts == expected
        assert stats == expected_stats
        assert stats.skipped_groups > 0  # the cap actually gated groups

    def test_partials_deleted_after_merge(self, tmp_path):
        self._sharded(3, 0, tmp_path)
        assert list((tmp_path / "spill").iterdir()) == []


# -- per-dimension graph equality ---------------------------------------------------


class TestSecondaryGraphEquality:
    """Each builder mines the identical topology under a sharded
    accumulator — the per-dimension half of the byte-identity contract."""

    @pytest.mark.parametrize("dimension", ["urifile", "ipset", "whois"])
    def test_default_dimensions(self, dimension, prepared, dataset, tmp_path):
        from repro.core.dimensions.ipset import build_ipset_graph
        from repro.core.dimensions.urifile import build_urifile_graph
        from repro.core.dimensions.whoisdim import build_whois_graph

        with JobPool(workers=1) as pool:
            accumulate = ShardedAccumulator(pool, 3, tmp_path / "spill", dimension)
            if dimension == "urifile":
                sharded = build_urifile_graph(prepared, accumulate=accumulate)
                plain = build_urifile_graph(prepared)
            elif dimension == "ipset":
                sharded = build_ipset_graph(prepared, accumulate=accumulate)
                plain = build_ipset_graph(prepared)
            else:
                sharded = build_whois_graph(prepared, dataset.whois, accumulate=accumulate)
                plain = build_whois_graph(prepared, dataset.whois)
        assert sharded == plain
        assert sharded.nodes == plain.nodes  # same canonical order

    def test_optin_dimensions(self, prepared, tmp_path):
        from repro.core.dimensions.timedim import build_time_graph
        from repro.core.dimensions.urlparam import build_urlparam_graph

        with JobPool(workers=1) as pool:
            for dimension, builder in (
                ("urlparam", build_urlparam_graph),
                ("time", build_time_graph),
            ):
                accumulate = ShardedAccumulator(pool, 3, tmp_path / "spill", dimension)
                assert builder(prepared, accumulate=accumulate) == builder(prepared)


# -- mine / run equivalence ---------------------------------------------------------


class TestMineEquivalence:
    def test_mined_dimensions_equal_single_shard(self, dataset):
        pipeline = SmashPipeline()
        base = pipeline.mine(dataset.trace, whois=dataset.whois)
        sharded = pipeline.mine(dataset.trace, whois=dataset.whois, shards=3)
        assert sharded.trace.name == base.trace.name
        assert sharded.trace.requests == base.trace.requests
        assert sharded.preprocess_report == base.preprocess_report
        # The injected inverted indexes must equal the lazily-built ones.
        assert sharded.trace.clients_by_server == base.trace.clients_by_server
        assert sharded.trace.ips_by_server == base.trace.ips_by_server
        assert sharded.trace.files_by_server == base.trace.files_by_server
        assert sharded.trace.servers_by_client == base.trace.servers_by_client
        assert sharded.trace.servers == base.trace.servers
        assert sharded.main == base.main
        assert sharded.secondary == base.secondary
        assert sharded.interner is not None
        assert sharded.interner.labels == base.interner.labels

    @pytest.mark.parametrize("shards", SHARD_COUNTS[1:])
    def test_run_byte_identical(self, dataset, shards):
        kwargs = dict(whois=dataset.whois, redirects=dataset.redirects)
        base = SmashPipeline().run(dataset.trace, **kwargs)
        config = SmashConfig().replace(shards=shards)
        sharded = SmashPipeline(config).run(dataset.trace, **kwargs)
        assert result_doc(sharded) == result_doc(base)
        assert sharded.scores == base.scores  # raw floats, not rounded
        assert sharded.campaigns == base.campaigns

    def test_all_dimensions_enabled_byte_identical(self, dataset):
        config = SmashConfig(
            enabled_secondary_dimensions=("urifile", "ipset", "whois", "urlparam", "time")
        )
        kwargs = dict(whois=dataset.whois, redirects=dataset.redirects)
        base = SmashPipeline(config).run(dataset.trace, **kwargs)
        sharded = SmashPipeline(config.replace(shards=3)).run(dataset.trace, **kwargs)
        assert result_doc(sharded) == result_doc(base)

    def test_process_executor_byte_identical(self, dataset):
        kwargs = dict(whois=dataset.whois, redirects=dataset.redirects)
        base = SmashPipeline().run(dataset.trace, **kwargs)
        config = SmashConfig().replace(shards=3, workers=2, executor="process")
        sharded = SmashPipeline(config).run(dataset.trace, **kwargs)
        assert result_doc(sharded) == result_doc(base)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_out_of_core_byte_identical(self, dataset, shards):
        kwargs = dict(whois=dataset.whois, redirects=dataset.redirects)
        base = SmashPipeline().run(dataset.trace, **kwargs)
        config = SmashConfig().replace(shards=shards, out_of_core=True)
        hollow = SmashPipeline(config).run(dataset.trace, **kwargs)
        assert result_doc(hollow) == result_doc(base)

    def test_subprocess_dispatch_byte_identical(self, dataset):
        kwargs = dict(whois=dataset.whois, redirects=dataset.redirects)
        base = SmashPipeline().run(dataset.trace, **kwargs)
        config = SmashConfig().replace(shards=2, dispatch="subprocess")
        dispatched = SmashPipeline(config).run(dataset.trace, **kwargs)
        assert result_doc(dispatched) == result_doc(base)

    def test_out_of_core_trace_is_index_only(self, dataset):
        config = SmashConfig().replace(shards=2, out_of_core=True)
        mined = SmashPipeline(config).mine(dataset.trace, whois=dataset.whois)
        assert isinstance(mined.trace, IndexOnlyTrace)
        base = SmashPipeline().mine(dataset.trace, whois=dataset.whois)
        assert len(mined.trace) == len(base.trace)
        assert mined.trace.servers == base.trace.servers
        assert mined.trace.clients_by_server == base.trace.clients_by_server
        with pytest.raises(PipelineError, match="index-only"):
            mined.trace.requests  # noqa: B018 - the access itself is the test
        with pytest.raises(PipelineError, match="index-only"):
            list(mined.trace)
        with pytest.raises(PipelineError, match="index-only"):
            mined.trace.requests_by_server("whatever.example")

    def test_dimension_cache_interop(self, dataset):
        # Signatures are computed on the assembled prepared trace, so a
        # sharded mine must hit the cache entries a single-shard mine
        # wrote — and vice versa.
        pipeline = SmashPipeline()
        cache = DimensionCache()
        base = pipeline.mine(dataset.trace, whois=dataset.whois, cache=cache)
        assert cache.last_mined  # first mine populated the cache
        sharded = pipeline.mine(dataset.trace, whois=dataset.whois, cache=cache, shards=3)
        assert not cache.last_mined  # everything reused
        expected = {"client", *pipeline.config.enabled_secondary_dimensions}
        assert set(cache.last_reused) == expected
        assert sharded.main == base.main
        assert sharded.secondary == base.secondary


# -- store-direct shard jobs --------------------------------------------------------


def _job_common(spill_root) -> dict:
    return {
        "shard": 0,
        "aggregate": True,
        "want_patterns": False,
        "want_windows": False,
        "want_referrers": False,
        "window_seconds": 600.0,
        "spill_root": str(spill_root),
    }


class TestStoreDirectMine:
    @pytest.fixture(scope="class")
    def window_store(self, tmp_path_factory):
        from repro.stream.store import TraceStore
        from repro.stream.window import DayPartition, RollingWindow

        root = tmp_path_factory.mktemp("storedirect")
        store = TraceStore(root / "store")
        window = RollingWindow(size=3, store=store)
        generator = TraceGenerator(small_scenario(seed=7, days=3))
        datasets = list(generator.iter_days())
        for dataset in datasets:
            window.append(
                DayPartition(
                    day=dataset.day,
                    trace=dataset.trace,
                    whois=dataset.whois,
                    redirects=dataset.redirects,
                )
            )
        return store, window

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_matches_in_memory_mine(self, window_store, shards):
        store, window = window_store
        trace, whois, redirects = window.combined()
        base = SmashPipeline().run(trace, whois=whois, redirects=redirects)

        refs = window.partition_refs()
        side_whois, side_redirects = window.combined_sidecars()
        pipe = SmashPipeline(SmashConfig().replace(shards=shards))
        mined = pipe.mine(
            None,
            whois=side_whois,
            partitions=[(ref.day, ref.digest) for ref in refs],
            store_root=store.root,
            shard_boundaries=tuple(
                store.request_count(ref.day, ref.digest) for ref in refs
            ),
            trace_name=trace.name,
            spill_dir=store.partials_dir(),
        )
        result = pipe.finish(mined, redirects=side_redirects)
        assert result_doc(result) == result_doc(base)
        assert isinstance(mined.trace, IndexOnlyTrace)
        assert mined.preprocess_report.raw_requests == len(trace)

    def test_trace_none_requires_store_inputs(self):
        with pytest.raises(PipelineError, match="store-direct"):
            SmashPipeline().mine(None)

    def test_missing_partition_is_stream_error(self, window_store, tmp_path):
        store, _ = window_store
        spec = {
            **_job_common(tmp_path / "spill"),
            "source": {
                "kind": "store",
                "root": str(store.root),
                "partitions": [[999, "0" * 64]],
            },
        }
        with pytest.raises(StreamError, match="has no partition"):
            run_shard_job(spec)

    def test_corrupt_partition_is_stream_error(self, tmp_path):
        from repro.stream.store import TraceStore
        from repro.stream.window import DayPartition

        dataset = TraceGenerator(small_scenario(seed=7)).generate_day(0)
        store = TraceStore(tmp_path / "store")
        ref = store.put(DayPartition(day=0, trace=dataset.trace))
        trace_file = store.path_of(0, ref.digest) / "trace.jsonl"
        lines = trace_file.read_text().splitlines(keepends=True)
        trace_file.write_text("".join(lines[:-1]))  # truncate: digest breaks
        spec = {
            **_job_common(tmp_path / "spill"),
            "source": {
                "kind": "store",
                "root": str(store.root),
                "partitions": [[0, ref.digest]],
            },
        }
        with pytest.raises(StreamError, match="corrupt partition"):
            run_shard_job(spec)

    def test_corrupt_spilled_input_is_stream_error(self, tmp_path):
        spill = PartialStore(tmp_path / "spill")
        digest, _ = spill.put("input-0000", {"requests": []})
        path = spill.path_of("input-0000")
        path.write_bytes(path.read_bytes() + b" ")
        spec = {
            **_job_common(tmp_path / "spill"),
            "source": {
                "kind": "spill",
                "root": str(tmp_path / "spill"),
                "name": "input-0000",
                "digest": digest,
                "trace_name": "t",
            },
        }
        with pytest.raises(StreamError, match="corrupt spilled partial"):
            run_shard_job(spec)

    def test_subprocess_worker_surfaces_stream_error(self, window_store, tmp_path):
        # A worker-side StreamError must cross the subprocess boundary
        # and re-raise as a coordinator-side StreamError.
        from repro.core.dispatch import SubprocessDispatcher

        store, _ = window_store
        spec = {
            **_job_common(tmp_path / "spill"),
            "source": {
                "kind": "store",
                "root": str(store.root),
                "partitions": [[999, "0" * 64]],
            },
        }
        dispatcher = SubprocessDispatcher(workers=1)
        try:
            with pytest.raises(StreamError, match="has no partition"):
                dispatcher.run([spec])
        finally:
            dispatcher.close()


# -- spill-directory garbage collection ---------------------------------------------


class TestGcOrphans:
    @staticmethod
    def _plant(parent: Path, name: str, pid: int | None, age_seconds: float) -> Path:
        import time

        path = parent / name
        path.mkdir(parents=True)
        if pid is not None:
            (path / PartialStore.OWNER_NAME).write_text(f"{pid}\n")
        stamp = time.time() - age_seconds
        os.utime(path, (stamp, stamp))
        return path

    @staticmethod
    def _dead_pid() -> int:
        process = subprocess.Popen([sys.executable, "-c", "pass"])
        process.wait()
        return process.pid

    def test_stale_dead_owner_removed(self, tmp_path):
        stale = self._plant(tmp_path, "mine-stale", self._dead_pid(), 3600.0)
        removed = PartialStore.gc_orphans(tmp_path)
        assert removed == [stale]
        assert not stale.exists()

    def test_unclaimed_stale_dir_removed(self, tmp_path):
        # A coordinator that crashed before claim() leaves no OWNER file;
        # age alone must be enough to collect it.
        stale = self._plant(tmp_path, "mine-unclaimed", None, 3600.0)
        assert PartialStore.gc_orphans(tmp_path) == [stale]

    def test_fresh_dir_kept(self, tmp_path):
        fresh = self._plant(tmp_path, "mine-fresh", self._dead_pid(), 1.0)
        assert PartialStore.gc_orphans(tmp_path) == []
        assert fresh.exists()

    def test_live_owner_kept_regardless_of_age(self, tmp_path):
        live = self._plant(tmp_path, "mine-live", os.getpid(), 3600.0)
        assert PartialStore.gc_orphans(tmp_path) == []
        assert live.exists()

    def test_non_mine_dirs_untouched(self, tmp_path):
        other = self._plant(tmp_path, "day-00001-abc", None, 3600.0)
        assert PartialStore.gc_orphans(tmp_path) == []
        assert other.exists()

    def test_sharded_mine_collects_planted_orphan(self, dataset, tmp_path):
        # End to end: a stale orphan under the spill parent disappears as
        # a side effect of the next sharded mine over the same parent.
        stale = self._plant(tmp_path, "mine-crashed", self._dead_pid(), 3600.0)
        config = SmashConfig().replace(shards=2)
        SmashPipeline(config).mine(
            dataset.trace, whois=dataset.whois, spill_dir=tmp_path
        )
        assert not stale.exists()
        # ...and the mine's own spill root is gone too (normal cleanup).
        assert list(tmp_path.glob("mine-*")) == []

    def test_quarantine_dirs_never_collected(self, tmp_path):
        # Quarantined evidence matches the mine-* glob but holds the only
        # record of what a failed attempt spilled: the collector must skip
        # it no matter how stale or ownerless it looks.
        evidence = self._plant(
            tmp_path, "mine-dead.quarantine", self._dead_pid(), 3600.0
        )
        (evidence / "REASON.json").write_text("{}")
        stale = self._plant(tmp_path, "mine-dead", self._dead_pid(), 3600.0)
        assert PartialStore.gc_orphans(tmp_path) == [stale]
        assert evidence.exists()
        assert (evidence / "REASON.json").exists()


class TestPartialStoreConcurrency:
    def test_concurrent_coordinator_claims_leave_valid_owner(self, tmp_path):
        # Two coordinators racing claim() on the same root (a crashed
        # mine restarted while its predecessor's claim still writes) must
        # leave a parseable OWNER file naming one of them — never torn
        # bytes that would break _owner_alive's pid check.
        root = tmp_path / "spill"
        script = (
            "import sys\n"
            "sys.path.insert(0, sys.argv[2])\n"
            "from repro.stream.store import PartialStore\n"
            "import os\n"
            "store = PartialStore(sys.argv[1])\n"
            "for _ in range(50):\n"
            "    store.claim()\n"
            "print(os.getpid())\n"
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(root), str(SRC_DIR)],
                stdout=subprocess.PIPE,
                text=True,
            )
            for _ in range(3)
        ]
        pids = {int(proc.communicate(timeout=60)[0].strip()) for proc in procs}
        assert all(proc.returncode == 0 for proc in procs)
        owner = int((root / PartialStore.OWNER_NAME).read_text().strip())
        assert owner in pids

    def test_concurrent_puts_never_publish_torn_bytes(self, tmp_path):
        # Racing workers spilling the same name (a retried shard whose
        # first attempt was merely slow, not dead) finalise via tmp +
        # os.replace: whichever write wins, the published file is one
        # complete payload whose digest one of the winners reported.
        from concurrent.futures import ThreadPoolExecutor

        import hashlib

        store = PartialStore(tmp_path / "spill")
        payloads = [{"worker": i, "rows": list(range(2000))} for i in range(8)]
        with ThreadPoolExecutor(max_workers=8) as pool:
            digests = set(
                pool.map(lambda p: store.put("index-0000", p)[0], payloads)
            )
        data = store.path_of("index-0000").read_bytes()
        assert hashlib.sha256(data).hexdigest() in digests
        assert isinstance(json.loads(data), dict)
        # No abandoned .tmp files once every put has finalised.
        assert list(store.root.glob("*.tmp-*")) == []


# -- window / store helpers for the out-of-core path --------------------------------


class TestOutOfCoreWindowHelpers:
    def test_request_count_reads_manifest_only(self, tmp_path, dataset):
        from repro.stream.store import TraceStore
        from repro.stream.window import DayPartition

        store = TraceStore(tmp_path / "store")
        ref = store.put(DayPartition(day=0, trace=dataset.trace))
        assert store.request_count(0, ref.digest) == len(dataset.trace)
        with pytest.raises(StreamError, match="has no partition"):
            store.request_count(1, ref.digest)

    def test_partition_refs_requires_store(self, dataset):
        from repro.stream.window import DayPartition, RollingWindow

        window = RollingWindow(size=1)
        window.append(DayPartition(day=0, trace=dataset.trace))
        with pytest.raises(StreamError, match="needs a trace store"):
            window.partition_refs()

    def test_combined_sidecars_match_combined(self, tmp_path):
        from repro.stream.store import TraceStore
        from repro.stream.window import (
            DayPartition,
            RollingWindow,
            redirects_to_dict,
            whois_to_list,
        )

        store = TraceStore(tmp_path / "store")
        window = RollingWindow(size=3, store=store)
        for dataset in TraceGenerator(small_scenario(seed=7, days=3)).iter_days():
            window.append(
                DayPartition(
                    day=dataset.day,
                    trace=dataset.trace,
                    whois=dataset.whois,
                    redirects=dataset.redirects,
                )
            )
        side_whois, side_redirects = window.combined_sidecars()
        _, whois, redirects = window.combined()
        assert whois_to_list(side_whois) == whois_to_list(whois)
        assert redirects_to_dict(side_redirects) == redirects_to_dict(redirects)


# -- streaming ----------------------------------------------------------------------


class TestStreamEquivalence:
    @staticmethod
    def _stream_three_days(tmp_path, label: str, shards: int):
        store_dir = tmp_path / f"store_{label}"
        engine = StreamingSmash(window_size=2, shards=shards, store_dir=store_dir)
        generator = TraceGenerator(small_scenario(seed=7, days=3))
        docs = []
        for dataset in generator.iter_days():
            update = engine.ingest_dataset(dataset)
            docs.append(result_doc(update.result))
        engine.close()
        return docs, store_dir

    def test_store_backed_stream_byte_identical_and_spill_cleaned(self, tmp_path):
        base_docs, _ = self._stream_three_days(tmp_path, "base", 1)
        sharded_docs, store_dir = self._stream_three_days(tmp_path, "sharded", 4)
        assert sharded_docs == base_docs
        # Partials spill under the store but are transient per-mine
        # state: nothing may survive the mine that wrote it.
        partials = TraceStore(store_dir).partials_dir()
        assert not partials.exists() or list(partials.iterdir()) == []

    def test_out_of_core_stream_byte_identical_and_spill_cleaned(self, tmp_path):
        base_docs, _ = self._stream_three_days(tmp_path, "base", 1)
        config = SmashConfig().replace(out_of_core=True)
        store_dir = tmp_path / "store_ooc"
        engine = StreamingSmash(
            window_size=2, shards=4, store_dir=store_dir, config=config
        )
        docs = []
        for dataset in TraceGenerator(small_scenario(seed=7, days=3)).iter_days():
            docs.append(result_doc(engine.ingest_dataset(dataset).result))
        # rerun_at must work without ever materialising the window.
        rerun = result_doc(engine.rerun_at(0.8))
        engine.close()
        assert docs == base_docs
        assert rerun == docs[-1]
        partials = TraceStore(store_dir).partials_dir()
        assert not partials.exists() or list(partials.iterdir()) == []

    def test_out_of_core_stream_requires_store(self):
        with pytest.raises(StreamError, match="trace store"):
            StreamingSmash(
                window_size=2, config=SmashConfig().replace(out_of_core=True)
            )


# -- subprocess matrix: hash seeds x shard counts -----------------------------------
#
# In-process tests cannot vary PYTHONHASHSEED (one interpreter has one
# hash seed), so the end-to-end acceptance criterion — `--shards N` is
# byte-identical under *any* hash seed — runs the CLI in pinned
# subprocesses, mirroring tests/test_determinism.py.


def _run_python(args: list[str], hash_seed: int, cwd: Path) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = str(SRC_DIR) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, *args],
        env=env,
        cwd=cwd,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"subprocess failed under PYTHONHASHSEED={hash_seed}:\n"
        f"{completed.stdout}\n{completed.stderr}"
    )
    return completed.stdout


@pytest.fixture(scope="module")
def day_dir(tmp_path_factory) -> Path:
    target = tmp_path_factory.mktemp("shardmine") / "day0"
    _run_python(
        ["-m", "repro", "generate", "--scenario", "small", "--out", str(target)],
        hash_seed=0,
        cwd=target.parent,
    )
    return target


def test_run_is_shard_and_seed_invariant(day_dir: Path, tmp_path: Path) -> None:
    """`repro run --shards N` writes byte-identical campaign JSON for
    every (shard count, hash seed) combination."""
    outputs: dict[tuple[int, int], bytes] = {}
    for shards in SHARD_COUNTS:
        for seed in HASH_SEEDS if shards > 1 else HASH_SEEDS[:1]:
            out = tmp_path / f"campaigns_{shards}_{seed}.json"
            _run_python(
                [
                    "-m",
                    "repro",
                    "run",
                    "--trace",
                    str(day_dir / "trace.jsonl"),
                    "--whois",
                    str(day_dir / "whois.json"),
                    "--redirects",
                    str(day_dir / "redirects.json"),
                    "--shards",
                    str(shards),
                    "--out",
                    str(out),
                ],
                hash_seed=seed,
                cwd=tmp_path,
            )
            outputs[(shards, seed)] = out.read_bytes()
    baseline = outputs[(1, HASH_SEEDS[0])]
    assert b'"campaigns"' in baseline
    for key, produced in outputs.items():
        assert produced == baseline, f"campaign JSON diverged for (shards, seed)={key}"


def test_run_out_of_core_and_dispatch_seed_invariant(
    day_dir: Path, tmp_path: Path
) -> None:
    """The out-of-core reduce and the subprocess dispatcher keep the
    byte-identity property across shard counts and hash seeds."""
    base = tmp_path / "campaigns_base.json"
    _run_python(
        [
            "-m",
            "repro",
            "run",
            "--trace",
            str(day_dir / "trace.jsonl"),
            "--whois",
            str(day_dir / "whois.json"),
            "--redirects",
            str(day_dir / "redirects.json"),
            "--out",
            str(base),
        ],
        hash_seed=HASH_SEEDS[0],
        cwd=tmp_path,
    )
    baseline = base.read_bytes()
    assert b'"campaigns"' in baseline

    variants: list[tuple[str, int, list[str]]] = []
    for shards, seed in zip(SHARD_COUNTS, HASH_SEEDS):
        variants.append((f"ooc_{shards}", seed, ["--shards", str(shards), "--out-of-core"]))
    variants.append(("subproc", HASH_SEEDS[1], ["--shards", "2", "--dispatch", "subprocess"]))
    variants.append(
        (
            "subproc_ooc",
            HASH_SEEDS[2],
            ["--shards", "2", "--dispatch", "subprocess", "--out-of-core"],
        )
    )
    for label, seed, flags in variants:
        out = tmp_path / f"campaigns_{label}.json"
        _run_python(
            [
                "-m",
                "repro",
                "run",
                "--trace",
                str(day_dir / "trace.jsonl"),
                "--whois",
                str(day_dir / "whois.json"),
                "--redirects",
                str(day_dir / "redirects.json"),
                *flags,
                "--out",
                str(out),
            ],
            hash_seed=seed,
            cwd=tmp_path,
        )
        assert out.read_bytes() == baseline, f"campaign JSON diverged for {label}"


def test_stream_is_shard_and_seed_invariant(tmp_path: Path) -> None:
    """A 3-day `repro stream --shards N` (window 2, store-backed) writes
    byte-identical summary and campaign JSON at any seed."""
    outputs: dict[tuple[str, int, int], bytes] = {}
    matrix = [("", 1, HASH_SEEDS[0])] + [
        ("", shards, seed) for shards, seed in zip(SHARD_COUNTS[1:], HASH_SEEDS[1:])
    ]
    # The out-of-core stream (store-direct map jobs + streaming reduce)
    # must land on the same bytes, at yet another seed.
    matrix.append(("ooc", 4, HASH_SEEDS[2]))
    for mode, shards, seed in matrix:
        label = f"{mode}{shards}_{seed}"
        summary = tmp_path / f"summary_{label}.json"
        campaigns = tmp_path / f"campaigns_{label}.json"
        _run_python(
            [
                "-m",
                "repro",
                "stream",
                "--scenario",
                "small",
                "--days",
                "3",
                "--window",
                "2",
                "--store",
                str(tmp_path / f"store_{label}"),
                "--shards",
                str(shards),
                *(["--out-of-core"] if mode == "ooc" else []),
                "--out",
                str(summary),
                "--campaigns-out",
                str(campaigns),
            ],
            hash_seed=seed,
            cwd=tmp_path,
        )
        outputs[(mode, shards, seed)] = (
            summary.read_bytes() + b"\n--\n" + campaigns.read_bytes()
        )
    baseline = outputs[matrix[0]]
    assert b'"campaigns"' in baseline
    for key, produced in outputs.items():
        assert produced == baseline, f"stream JSON diverged for (mode, shards, seed)={key}"
