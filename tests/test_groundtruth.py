"""Unit tests for the IDS and blacklist ground-truth substrate."""

import pytest

from repro.groundtruth.blacklist import BlacklistAggregator, BlacklistService
from repro.groundtruth.ids import SignatureIds
from repro.groundtruth.labels import Signature, ThreatLabel
from repro.httplog.records import HttpRequest
from repro.httplog.trace import HttpTrace

LABEL = ThreatLabel(threat_id="testbot", category="cnc")


def request(host="evil.com", uri="/gate.php?id=1", ua="Bot/1"):
    return HttpRequest(
        timestamp=0.0,
        client="c1",
        host=host,
        server_ip="1.2.3.4",
        uri=uri,
        user_agent=ua,
    )


class TestThreatLabel:
    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            ThreatLabel(threat_id="", category="cnc")


class TestSignature:
    def test_requires_a_criterion(self):
        with pytest.raises(ValueError):
            Signature(label=LABEL)

    def test_server_signature(self):
        sig = Signature(label=LABEL, server="evil.com")
        assert sig.matches(request())
        assert not sig.matches(request(host="good.com"))

    def test_server_signature_uses_mapped_name(self):
        sig = Signature(label=LABEL, server="evil.com")
        assert sig.matches(request(host="www.evil.com"), server_name="evil.com")

    def test_protocol_signature(self):
        sig = Signature(label=LABEL, uri_file="gate.php", user_agent="Bot/1")
        assert sig.matches(request())
        assert sig.matches(request(host="anything.com"))
        assert not sig.matches(request(ua="Mozilla/5.0"))
        assert not sig.matches(request(uri="/other.php"))

    def test_parameter_signature_sorted(self):
        sig = Signature(label=LABEL, parameter_names=("id", "e", "p"))
        assert sig.parameter_names == ("e", "id", "p")
        assert sig.matches(request(uri="/x.php?p=1&id=2&e=3"))
        assert not sig.matches(request(uri="/x.php?p=1"))


class TestSignatureIds:
    def make_trace(self):
        return HttpTrace([
            request(host="www.evil.com"),
            request(host="good.com", ua="Mozilla/5.0", uri="/page.html"),
            request(host="proto.com", uri="/gate.php?x=1", ua="Bot/1"),
        ])

    def test_label_servers_with_mapper(self):
        ids = SignatureIds("test", [Signature(label=LABEL, server="evil.com")])
        labels = ids.label_servers(self.make_trace(), lambda h: h.removeprefix("www."))
        assert set(labels) == {"evil.com"}

    def test_protocol_signature_hits_unknown_server(self):
        ids = SignatureIds("test", [
            Signature(label=LABEL, uri_file="gate.php", user_agent="Bot/1"),
        ])
        detected = ids.detected_servers(self.make_trace())
        assert "proto.com" in detected
        assert "good.com" not in detected

    def test_threat_groups(self):
        other = ThreatLabel(threat_id="other", category="cnc")
        ids = SignatureIds("test", [
            Signature(label=LABEL, server="www.evil.com"),
            Signature(label=other, server="proto.com"),
        ])
        groups = ids.threat_groups(self.make_trace())
        assert groups["testbot"] == frozenset({"www.evil.com"})
        assert groups["other"] == frozenset({"proto.com"})

    def test_len(self):
        assert len(SignatureIds("t", [Signature(label=LABEL, server="x")])) == 1


class TestBlacklistAggregator:
    def test_primary_confirms_alone(self):
        agg = BlacklistAggregator(
            primary=[BlacklistService.from_servers("mdl", ["bad.com"])],
        )
        assert agg.is_confirmed("bad.com")
        assert not agg.is_confirmed("good.com")

    def test_aggregated_needs_two_votes(self):
        # The paper requires >= 2 of the 78 WhatIsMyIPAddress feeds.
        agg = BlacklistAggregator(
            aggregated_feeds=[
                BlacklistService.from_servers("feed1", ["one.com", "two.com"]),
                BlacklistService.from_servers("feed2", ["two.com"]),
            ],
        )
        assert not agg.is_confirmed("one.com")
        assert agg.is_confirmed("two.com")
        assert agg.vote_count("two.com") == 2

    def test_confirmed_among(self):
        agg = BlacklistAggregator(
            primary=[BlacklistService.from_servers("mdl", ["bad.com"])],
        )
        assert agg.confirmed_among(["bad.com", "good.com"]) == frozenset({"bad.com"})

    def test_listing_services(self):
        agg = BlacklistAggregator.from_mapping(
            {"mdl": ["bad.com"]},
            {"feed1": ["bad.com"]},
        )
        assert set(agg.listing_services("bad.com")) == {"mdl", "feed1"}

    def test_invalid_votes(self):
        with pytest.raises(ValueError):
            BlacklistAggregator(min_aggregated_votes=0)
