"""Unit tests for preprocessing (Section III-A)."""

import pytest

from repro.config import PreprocessConfig
from repro.core.preprocess import aggregate_trace, idf_distribution, preprocess
from repro.httplog.records import HttpRequest
from repro.httplog.trace import HttpTrace


def request(client, host, uri="/x.html"):
    return HttpRequest(
        timestamp=0.0,
        client=client,
        host=host,
        server_ip="1.1.1.1",
        uri=uri,
    )


class TestAggregateTrace:
    def test_subdomains_collapse(self):
        trace = HttpTrace([
            request("c1", "a.xyz.com"),
            request("c2", "b.xyz.com"),
            request("c3", "www.other.net"),
        ])
        aggregated = aggregate_trace(trace)
        assert aggregated.servers == frozenset({"xyz.com", "other.net"})

    def test_ip_servers_untouched(self):
        trace = HttpTrace([request("c1", "10.1.2.3")])
        assert aggregate_trace(trace).servers == frozenset({"10.1.2.3"})

    def test_client_sets_merge(self):
        trace = HttpTrace([request("c1", "a.xyz.com"), request("c2", "b.xyz.com")])
        aggregated = aggregate_trace(trace)
        assert aggregated.clients_by_server["xyz.com"] == frozenset({"c1", "c2"})


class TestIdfFilter:
    def make_trace(self, popular_clients=5):
        requests = [request(f"c{i}", "popular.com") for i in range(popular_clients)]
        requests.append(request("c0", "rare.com"))
        return HttpTrace(requests)

    def test_popular_servers_removed(self):
        trace = self.make_trace(popular_clients=5)
        kept, report = preprocess(trace, PreprocessConfig(idf_threshold=3))
        assert kept.servers == frozenset({"rare.com"})
        assert report.popular_servers_removed == 1

    def test_threshold_inclusive(self):
        # "more clients than the threshold" are removed; exactly at the
        # threshold stays.
        trace = self.make_trace(popular_clients=3)
        kept, _ = preprocess(trace, PreprocessConfig(idf_threshold=3))
        assert "popular.com" in kept.servers

    def test_default_threshold_keeps_everything_small(self):
        trace = self.make_trace()
        kept, report = preprocess(trace)
        assert kept.servers == trace.servers
        assert report.popular_servers_removed == 0

    def test_report_math(self):
        trace = HttpTrace([
            request("c1", "a.xyz.com"),
            request("c2", "b.xyz.com"),
            *[request(f"c{i}", "big.com") for i in range(10)],
        ])
        kept, report = preprocess(trace, PreprocessConfig(idf_threshold=5))
        assert report.raw_servers == 3
        assert report.aggregated_servers == 2
        assert report.kept_servers == 1
        assert report.raw_requests == 12
        assert report.kept_requests == 2
        assert report.aggregation_reduction == pytest.approx(1 / 3)
        assert report.traffic_reduction == pytest.approx(10 / 12)

    def test_aggregation_can_push_server_over_threshold(self):
        # Two subdomains with 2 clients each -> one aggregated server with
        # 4 clients, over a threshold of 3.
        trace = HttpTrace([
            request("c1", "a.cdn.com"),
            request("c2", "a.cdn.com"),
            request("c3", "b.cdn.com"),
            request("c4", "b.cdn.com"),
        ])
        kept, report = preprocess(trace, PreprocessConfig(idf_threshold=3))
        assert kept.servers == frozenset()
        assert report.popular_servers_removed == 1

    def test_aggregation_disabled(self):
        trace = HttpTrace([request("c1", "a.xyz.com"), request("c2", "b.xyz.com")])
        kept, _ = preprocess(
            trace, PreprocessConfig(aggregate_second_level=False)
        )
        assert kept.servers == frozenset({"a.xyz.com", "b.xyz.com"})


class TestIdfDistribution:
    def test_counts(self):
        trace = HttpTrace([
            request("c1", "a.com"),
            request("c2", "a.com"),
            request("c1", "b.com"),
        ])
        assert idf_distribution(trace) == {"a.com": 2, "b.com": 1}
