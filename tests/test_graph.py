"""Unit tests for the graph substrate: WeightedGraph, modularity, Louvain."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import LouvainConfig
from repro.errors import GraphError
from repro.graph.components import connected_components
from repro.graph.louvain import louvain_communities
from repro.graph.modularity import modularity
from repro.graph.wgraph import WeightedGraph


def clique(nodes, weight=1.0, graph=None):
    # `graph or WeightedGraph()` would discard an *empty* caller graph
    # (WeightedGraph is falsy when it has no nodes).
    graph = graph if graph is not None else WeightedGraph()
    nodes = list(nodes)
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            graph.add_edge(u, v, weight)
    return graph


class TestWeightedGraph:
    def test_add_edge_creates_nodes(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 2.0)
        assert "a" in g and "b" in g
        assert g.edge_weight("a", "b") == 2.0
        assert g.edge_weight("b", "a") == 2.0

    def test_add_edge_accumulates(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("a", "b", 0.5)
        assert g.edge_weight("a", "b") == 1.5
        assert g.num_edges() == 1

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphError):
            WeightedGraph().add_edge("a", "b", -1.0)

    def test_self_loop_degree_doubles(self):
        g = WeightedGraph()
        g.add_edge("a", "a", 2.0)
        assert g.degree("a") == 4.0
        assert g.total_weight == 2.0

    def test_degree_sums_weights(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("a", "c", 0.5)
        assert g.degree("a") == 1.5

    def test_degree_missing_node_raises(self):
        with pytest.raises(GraphError):
            WeightedGraph().degree("nope")

    def test_remove_node(self):
        g = clique("abc")
        g.remove_node("a")
        assert "a" not in g
        assert g.total_weight == pytest.approx(1.0)
        assert g.num_edges() == 1

    def test_remove_missing_raises(self):
        with pytest.raises(GraphError):
            WeightedGraph().remove_node("x")

    def test_edges_iterates_each_once(self):
        g = clique("abcd")
        assert len(list(g.edges())) == 6
        assert g.num_edges() == 6

    def test_subgraph(self):
        g = clique("abcd")
        sub = g.subgraph(["a", "b", "zz"])
        assert len(sub) == 2
        assert sub.edge_weight("a", "b") == 1.0
        assert sub.num_edges() == 1

    def test_density_complete(self):
        assert clique("abcd").density() == 1.0

    def test_density_paper_formula(self):
        # 2|e| / (|v|(|v|-1)); 4 nodes, 2 edges -> 4/12.
        g = WeightedGraph()
        g.add_edge("a", "b")
        g.add_edge("c", "d")
        assert g.density() == pytest.approx(2 * 2 / (4 * 3))

    def test_density_small_graphs(self):
        assert WeightedGraph().density() == 0.0
        g = WeightedGraph()
        g.add_node("a")
        assert g.density() == 0.0

    def test_total_weight_tracks_removals(self):
        g = clique("abc", weight=2.0)
        assert g.total_weight == pytest.approx(6.0)


class TestConnectedComponents:
    def test_two_components(self):
        g = WeightedGraph()
        g.add_edge("a", "b")
        g.add_edge("c", "d")
        g.add_node("e")
        components = connected_components(g)
        assert sorted(map(sorted, components)) == [["a", "b"], ["c", "d"], ["e"]]

    def test_empty(self):
        assert connected_components(WeightedGraph()) == []


class TestModularity:
    def test_single_community_is_zero(self):
        g = clique("abcd")
        q = modularity(g, {n: 0 for n in "abcd"})
        assert q == pytest.approx(0.0)

    def test_two_cliques_partition_positive(self):
        g = clique("abc")
        clique("xyz", graph=g)
        g.add_edge("a", "x", 0.1)
        partition = {n: 0 for n in "abc"} | {n: 1 for n in "xyz"}
        assert modularity(g, partition) > 0.3

    def test_bad_partition_worse_than_good(self):
        g = clique("abc")
        clique("xyz", graph=g)
        g.add_edge("a", "x", 0.1)
        good = {n: 0 for n in "abc"} | {n: 1 for n in "xyz"}
        bad = {n: 0 for n in "abx"} | {n: 1 for n in "cyz"}
        assert modularity(g, good) > modularity(g, bad)

    def test_missing_node_raises(self):
        g = clique("ab")
        with pytest.raises(GraphError):
            modularity(g, {"a": 0})

    def test_empty_graph(self):
        assert modularity(WeightedGraph(), {}) == 0.0

    def test_range(self):
        g = clique("abcde")
        q = modularity(g, {n: i for i, n in enumerate("abcde")})
        assert -1.0 <= q <= 1.0


class TestLouvain:
    def test_two_cliques_separate(self):
        g = clique("abcd")
        clique("wxyz", graph=g)
        g.add_edge("a", "w", 0.05)
        result = louvain_communities(g)
        assert frozenset("abcd") in result.communities
        assert frozenset("wxyz") in result.communities

    def test_ring_of_cliques(self):
        g = WeightedGraph()
        cliques = [[f"{i}{ch}" for ch in "abcd"] for i in range(4)]
        for members in cliques:
            clique(members, graph=g)
        for i in range(4):
            g.add_edge(cliques[i][0], cliques[(i + 1) % 4][1], 0.05)
        result = louvain_communities(g)
        for members in cliques:
            assert frozenset(members) in result.communities

    def test_empty_graph(self):
        result = louvain_communities(WeightedGraph())
        assert result.communities == ()
        assert result.modularity == 0.0

    def test_isolated_nodes_are_singletons(self):
        g = WeightedGraph()
        g.add_node("lonely")
        g.add_edge("a", "b")
        result = louvain_communities(g)
        assert frozenset({"lonely"}) in result.communities

    def test_deterministic(self):
        def build():
            g = clique("abcd")
            clique("wxyz", graph=g)
            g.add_edge("a", "w", 0.05)
            return g

        first = louvain_communities(build())
        second = louvain_communities(build())
        assert first.communities == second.communities
        assert first.modularity == second.modularity

    def test_partition_matches_communities(self):
        g = clique("abcd")
        clique("wxyz", graph=g)
        result = louvain_communities(g)
        for node, index in result.partition.items():
            assert node in result.communities[index]

    def test_community_of(self):
        g = clique("ab")
        result = louvain_communities(g)
        assert result.community_of("a") == result.community_of("b")

    def test_modularity_not_worse_than_trivial(self):
        g = clique("abc")
        clique("xyz", graph=g)
        g.add_edge("a", "x", 0.2)
        result = louvain_communities(g)
        assert result.modularity >= 0.0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)),
        min_size=1,
        max_size=40,
    ))
    def test_partition_covers_all_nodes(self, edges):
        g = WeightedGraph()
        for u, v in edges:
            g.add_edge(f"n{u}", f"n{v}", 1.0)
        result = louvain_communities(g)
        covered = {node for community in result.communities for node in community}
        assert covered == set(g.nodes)
        assert -1.0 <= result.modularity <= 1.0

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 6), st.integers(2, 5))
    def test_disconnected_cliques_always_recovered(self, num_cliques, size):
        g = WeightedGraph()
        expected = []
        for c in range(num_cliques):
            members = [f"c{c}n{i}" for i in range(size)]
            clique(members, graph=g)
            expected.append(frozenset(members))
        result = louvain_communities(g)
        for community in expected:
            assert community in result.communities

    def test_config_validation(self):
        with pytest.raises(Exception):
            louvain_communities(WeightedGraph(), LouvainConfig(max_levels=0))
