"""Interned core == pre-refactor label path, byte for byte (PR 5).

The mining core was rewritten onto dense integer server ids: interned
graphs, index-driven candidate generation, id-domain correlation/
pruning/inference with decoding only at the results boundary.  The
refactor's contract is that outputs are **byte-identical** to the
pre-refactor label-path implementation, which lives on (frozen) in
:mod:`repro.core.legacy` exactly for this comparison.

The suite runs under whatever ``PYTHONHASHSEED`` pytest inherited (CI
pins it to ``random``), and both cores run in-process, so JSON string
equality here is genuine byte equality of the result documents.
"""

from __future__ import annotations

import json

import pytest

from repro.core import legacy
from repro.core.dimensions.client import build_client_graph
from repro.core.dimensions.ipset import build_ipset_graph
from repro.core.dimensions.timedim import build_time_graph
from repro.core.dimensions.urifile import build_urifile_graph
from repro.core.dimensions.urlparam import build_urlparam_graph
from repro.core.dimensions.whoisdim import build_whois_graph
from repro.core.legacy import LegacyPipeline
from repro.core.pipeline import SmashPipeline
from repro.core.preprocess import preprocess
from repro.eval.export import result_to_dict
from repro.stream import JsonlSink, StreamingSmash
from repro.stream.scoring import scenario_evidence
from repro.synth.generator import TraceGenerator
from repro.synth.scenarios import small_scenario

THRESHOLDS = (0.5, 0.8, 1.0)


@pytest.fixture(scope="module")
def dataset():
    return TraceGenerator(small_scenario(seed=7)).generate_day(0)


@pytest.fixture(scope="module")
def prepared(dataset):
    trace, _ = preprocess(dataset.trace)
    return trace


def result_doc(result) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True)


class TestBuilderEquivalence:
    """Each interned builder mines the identical weighted topology."""

    def test_client(self, prepared):
        single = {
            server
            for server, clients in prepared.clients_by_server.items()
            if len(clients) == 1
        }
        multi = prepared.filter_servers(lambda server: server not in single)
        new = build_client_graph(multi)
        old = legacy.legacy_build_client_graph(multi)
        assert new == old
        assert new.nodes == old.nodes  # same canonical insertion order

    def test_ipset(self, prepared):
        assert build_ipset_graph(prepared) == legacy.legacy_build_ipset_graph(prepared)

    def test_urifile(self, prepared):
        assert build_urifile_graph(prepared) == legacy.legacy_build_urifile_graph(prepared)

    def test_whois(self, prepared, dataset):
        new = build_whois_graph(prepared, dataset.whois)
        assert new == legacy.legacy_build_whois_graph(prepared, dataset.whois)

    def test_urlparam(self, prepared):
        assert build_urlparam_graph(prepared) == legacy.legacy_build_urlparam_graph(prepared)

    def test_time(self, prepared):
        assert build_time_graph(prepared) == legacy.legacy_build_time_graph(prepared)

    def test_pair_cap_off_by_default_and_gates_when_set(self, prepared):
        from repro.config import DimensionConfig

        assert DimensionConfig().max_group_size == 0
        capped = build_ipset_graph(prepared, DimensionConfig(max_group_size=2))
        uncapped = build_ipset_graph(prepared)
        assert capped.num_edges() <= uncapped.num_edges()


class TestPipelineEquivalence:
    def test_run_byte_identical(self, dataset):
        new = SmashPipeline().run(dataset.trace, whois=dataset.whois, redirects=dataset.redirects)
        old = LegacyPipeline().run(dataset.trace, whois=dataset.whois, redirects=dataset.redirects)
        assert result_doc(new) == result_doc(old)
        # Scores carry raw floats; require exact equality, not rounding.
        assert new.scores == old.scores
        assert new.contributions == old.contributions
        assert new.candidate_ashes == old.candidate_ashes
        assert new.campaigns == old.campaigns

    def test_run_sweep_byte_identical(self, dataset):
        new = SmashPipeline().run_sweep(
            dataset.trace, THRESHOLDS, whois=dataset.whois, redirects=dataset.redirects
        )
        old = LegacyPipeline().run_sweep(
            dataset.trace, THRESHOLDS, whois=dataset.whois, redirects=dataset.redirects
        )
        for threshold in THRESHOLDS:
            assert result_doc(new[threshold]) == result_doc(old[threshold]), threshold

    def test_all_dimensions_enabled_byte_identical(self, dataset):
        from repro.config import SmashConfig

        config = SmashConfig(
            enabled_secondary_dimensions=("urifile", "ipset", "whois", "urlparam", "time")
        )
        new = SmashPipeline(config).run(
            dataset.trace, whois=dataset.whois, redirects=dataset.redirects
        )
        old = LegacyPipeline(config).run(
            dataset.trace, whois=dataset.whois, redirects=dataset.redirects
        )
        assert result_doc(new) == result_doc(old)


def _stream_three_days(tmp_path, label: str, use_legacy: bool):
    """Run a scored 3-day stream; return (campaign docs, alerts bytes)."""
    alerts_path = tmp_path / f"alerts_{label}.jsonl"
    engine = StreamingSmash(
        window_size=2,
        evidence=scenario_evidence(),
        sinks=(JsonlSink(alerts_path),),
    )
    if use_legacy:
        # The engine drives its pipeline only through mine()/finish(),
        # which the frozen legacy core implements with the same
        # signatures (ignoring the incremental cache — a cache hit is
        # provably identical to re-mining, so results cannot differ).
        engine.pipeline = LegacyPipeline(engine.config)
    generator = TraceGenerator(small_scenario(seed=7, days=3))
    campaign_docs = []
    for dataset in generator.iter_days():
        update = engine.ingest_dataset(dataset)
        campaign_docs.append(result_doc(update.result))
    engine.close()
    return campaign_docs, alerts_path.read_bytes()


class TestStreamEquivalence:
    def test_three_day_stream_campaigns_and_alerts_byte_identical(self, tmp_path):
        new_campaigns, new_alerts = _stream_three_days(tmp_path, "new", False)
        old_campaigns, old_alerts = _stream_three_days(tmp_path, "legacy", True)
        assert new_campaigns == old_campaigns
        assert new_alerts == old_alerts
        assert new_alerts, "expected scored alerts from the small scenario"


# -- CSR backend equivalence under subprocess-pinned hash seeds ---------------
#
# In-process tests above run under one hash seed; the CSR-vs-pure-python
# contract additionally promises byte-identical output under *any*
# ``PYTHONHASHSEED``, so each backend runs in its own subprocess with the
# seed pinned (0, 1, and whatever "random" resolves to).  Requires numpy:
# without it both invocations would take the pure-python path and the
# comparison would be vacuous.

import os
import subprocess
import sys
from pathlib import Path

from repro.graph import HAVE_NUMPY

_SRC_DIR = Path(__file__).resolve().parent.parent / "src"
_HASH_SEEDS = ("0", "1", "random")


def _run_cli(args: list[str], hash_seed: str, cwd: Path) -> None:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = str(_SRC_DIR) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env,
        cwd=cwd,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"subprocess failed under PYTHONHASHSEED={hash_seed}:\n"
        f"{completed.stdout}\n{completed.stderr}"
    )


@pytest.fixture(scope="module")
def day_dir(tmp_path_factory) -> Path:
    target = tmp_path_factory.mktemp("csr_equivalence") / "day0"
    _run_cli(
        ["generate", "--scenario", "small", "--out", str(target)],
        hash_seed="0",
        cwd=target.parent,
    )
    return target


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
class TestCsrBackendHashSeedMatrix:
    def test_run_byte_identical_across_backends_and_seeds(self, day_dir, tmp_path):
        outputs: list[bytes] = []
        for seed in _HASH_SEEDS:
            for backend_flags in ((), ("--pure-python",)):
                out = tmp_path / f"campaigns_{seed}_{len(backend_flags)}.json"
                _run_cli(
                    [
                        "run",
                        "--trace",
                        str(day_dir / "trace.jsonl"),
                        "--whois",
                        str(day_dir / "whois.json"),
                        "--redirects",
                        str(day_dir / "redirects.json"),
                        "--out",
                        str(out),
                        *backend_flags,
                    ],
                    hash_seed=seed,
                    cwd=tmp_path,
                )
                outputs.append(out.read_bytes())
        assert b'"campaigns"' in outputs[0]
        assert all(doc == outputs[0] for doc in outputs[1:]), (
            "CSR and pure-python run output diverged across hash seeds"
        )

    def test_stream_byte_identical_across_backends_and_seeds(self, tmp_path):
        outputs: list[bytes] = []
        for seed in ("0", "random"):
            for backend_flags in ((), ("--pure-python",)):
                out = tmp_path / f"stream_{seed}_{len(backend_flags)}.json"
                _run_cli(
                    [
                        "stream",
                        "--scenario",
                        "small",
                        "--days",
                        "2",
                        "--campaigns-out",
                        str(out),
                        *backend_flags,
                    ],
                    hash_seed=seed,
                    cwd=tmp_path,
                )
                outputs.append(out.read_bytes())
        assert b'"campaigns"' in outputs[0]
        assert all(doc == outputs[0] for doc in outputs[1:]), (
            "CSR and pure-python stream output diverged across hash seeds"
        )
