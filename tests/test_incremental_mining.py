"""Incremental per-dimension mining: the DimensionCache must be
invisible in results (incremental == cold full re-mine, structurally)
while re-mining only the dimensions whose inputs actually changed."""

import pytest

from repro.config import DimensionConfig, SmashConfig
from repro.core.pipeline import (
    DIMENSION_SIGNATURES,
    SECONDARY_GRAPH_BUILDERS,
    DimensionCache,
    SmashPipeline,
)
from repro.core.results import MAIN_DIMENSION
from repro.errors import ConfigError
from repro.httplog.records import HttpRequest
from repro.httplog.trace import HttpTrace
from repro.stream import StreamingSmash
from repro.synth import TraceGenerator, small_scenario


def request(client, host, uri="/mal.html", ip="9.9.9.9", timestamp=0.0):
    return HttpRequest(
        timestamp=timestamp, client=client, host=host, server_ip=ip, uri=uri
    )


def campaign_trace(name="day", uri="/mal.html"):
    """Three bots visiting the same two servers (a minable herd)."""
    requests = []
    for bot in ("bot1", "bot2", "bot3"):
        for host in ("evil-a.com", "evil-b.com"):
            requests.append(request(bot, host, uri=uri))
    requests.append(request("visitor", "benign.com", uri="/index.html"))
    return HttpTrace(requests, name=name)


@pytest.fixture(scope="module")
def six_days():
    """Six generated days whose campaigns overlap across days."""
    return list(TraceGenerator(small_scenario(seed=3, days=6)).iter_days())


class TestDimensionSignatures:
    def test_every_builder_has_a_signature(self):
        assert set(DIMENSION_SIGNATURES) == set(SECONDARY_GRAPH_BUILDERS) | {
            MAIN_DIMENSION
        }

    def test_signatures_stable_for_equal_traces(self):
        config = SmashConfig()
        first, second = campaign_trace("a"), campaign_trace("b")
        for dimension, signer in DIMENSION_SIGNATURES.items():
            assert signer(first, None, config) == signer(second, None, config), (
                dimension
            )

    def test_signature_changes_with_dimension_config(self):
        trace = campaign_trace()
        base = SmashConfig()
        tweaked = base.replace(dimensions=DimensionConfig(filename_length_cutoff=10))
        for signer in DIMENSION_SIGNATURES.values():
            assert signer(trace, None, base) != signer(trace, None, tweaked)


class TestDimensionCache:
    def test_second_mine_reuses_everything(self):
        pipeline = SmashPipeline()
        cache = DimensionCache()
        trace = campaign_trace()
        first = pipeline.mine(trace, cache=cache)
        assert cache.last_mined and not cache.last_reused
        second = pipeline.mine(campaign_trace(name="again"), cache=cache)
        assert not cache.last_mined
        assert set(cache.last_reused) == set(DIMENSION_SIGNATURES) - {
            "urlparam",
            "time",
        }
        assert second.main == first.main
        assert second.secondary == first.secondary

    def test_cached_mine_equals_cold_mine(self):
        trace = campaign_trace()
        cold = SmashPipeline().mine(trace)
        cache = DimensionCache()
        pipeline = SmashPipeline()
        pipeline.mine(trace, cache=cache)  # warm the cache
        warm = pipeline.mine(trace, cache=cache)  # all dimensions reused
        assert warm.main == cold.main
        assert warm.secondary == cold.secondary
        assert warm.trace == cold.trace

    def test_only_dirtied_dimension_remines(self):
        pipeline = SmashPipeline()
        cache = DimensionCache()
        pipeline.mine(campaign_trace(), cache=cache)
        # Same clients, IPs and servers; one filename changes -> only the
        # URI-file dimension's inputs are touched.
        pipeline.mine(campaign_trace(uri="/other.html"), cache=cache)
        assert cache.last_mined == ("urifile",)
        assert set(cache.last_reused) == {MAIN_DIMENSION, "ipset", "whois"}

    def test_unknown_dimension_is_rejected_before_mining(self):
        config = SmashConfig(enabled_secondary_dimensions=("urifile", "mystery"))
        with pytest.raises(ConfigError):
            SmashPipeline(config)

    def test_hit_and_miss_counters(self):
        pipeline = SmashPipeline()
        cache = DimensionCache()
        pipeline.mine(campaign_trace(), cache=cache)
        assert cache.misses == 4 and cache.hits == 0
        pipeline.mine(campaign_trace(), cache=cache)
        assert cache.hits == 4
        cache.clear()
        assert len(cache) == 0

    def test_mine_without_cache_unchanged(self):
        trace = campaign_trace()
        assert SmashPipeline().mine(trace).main == SmashPipeline().mine(trace).main


class TestIncrementalStreamEquivalence:
    def test_incremental_equals_full_over_six_days(self, six_days):
        """The acceptance invariant: every advance's SmashResult must be
        structurally identical between the cached engine and a cold
        full-window re-mine, across >= 5 days of overlapping campaigns."""
        incremental = StreamingSmash(window_size=3, incremental=True)
        full = StreamingSmash(window_size=3, incremental=False)
        for dataset in six_days:
            warm = incremental.ingest_dataset(dataset)
            cold = full.ingest_dataset(dataset)
            assert warm.result == cold.result
            assert warm.single_client_result == cold.single_client_result
            assert warm.campaigns == cold.campaigns
            assert [e.to_dict() for e in warm.events] == [
                e.to_dict() for e in cold.events
            ]
        assert incremental.tracker.to_dict() == full.tracker.to_dict()

    def test_steady_stream_reuses_dimensions(self, six_days):
        """Re-ingesting identical day content must hit the cache."""
        first = six_days[0]
        engine = StreamingSmash(window_size=2, incremental=True)
        updates = [
            engine.ingest_day(
                day, first.trace, whois=first.whois, redirects=first.redirects
            )
            for day in range(3)
        ]
        assert updates[0].reused_dimensions == ()
        for update in updates[1:]:
            assert update.mined_dimensions == ()
            assert set(update.reused_dimensions) == {
                MAIN_DIMENSION,
                "urifile",
                "ipset",
                "whois",
            }
        # And the results repeat exactly (same window content each day).
        assert updates[2].result == updates[1].result

    def test_no_incremental_reports_all_dimensions_mined(self, six_days):
        engine = StreamingSmash(window_size=1, incremental=False)
        update = engine.ingest_dataset(six_days[0])
        assert update.reused_dimensions == ()
        assert set(update.mined_dimensions) == {
            MAIN_DIMENSION,
            "urifile",
            "ipset",
            "whois",
        }

    def test_config_flag_drives_engine_default(self):
        assert StreamingSmash().incremental is True
        disabled = StreamingSmash(config=SmashConfig(incremental=False))
        assert disabled.incremental is False
        overridden = StreamingSmash(
            config=SmashConfig(incremental=False), incremental=True
        )
        assert overridden.incremental is True

    def test_rerun_at_uses_cache_after_resume(self, six_days):
        engine = StreamingSmash(window_size=2, incremental=True)
        for dataset in six_days[:2]:
            engine.ingest_dataset(dataset)
        rerun = engine.rerun_at(engine.thresh)
        assert rerun.campaigns == engine.rerun_at(engine.thresh).campaigns
