"""Tests for the evaluation harness: verification, figures, tables."""

import pytest

from repro.core.results import Campaign
from repro.eval.figures import (
    dimension_decomposition,
    idf_series,
    main_herd_taxonomy,
    malicious_filename_lengths,
    persistence_series_detailed,
    size_distributions,
)
from repro.eval.tables import render_mapping, render_table
from repro.eval.verification import ServerLabel, Verifier


@pytest.fixture(scope="module")
def verifier(small_dataset):
    return Verifier(small_dataset)


@pytest.fixture(scope="module")
def summary(verifier, small_result):
    return verifier.verify(small_result, thresh=0.8, min_clients=2)


@pytest.fixture(scope="module")
def summary_single(verifier, small_result_single):
    return verifier.verify(
        small_result_single, thresh=1.0, min_clients=1, max_clients=1
    )


class TestVerifier:
    def test_ids2013_excludes_ids2012(self, verifier):
        assert not (verifier.ids2013_servers & verifier.ids2012_servers)

    def test_campaign_counts_sum(self, summary):
        assert sum(
            count for verdict, count in summary.campaign_counts.items()
            if verdict != "false_positive_noisy"
        ) == summary.num_campaigns

    def test_server_labels_cover_all_campaign_servers(self, summary):
        labelled = sum(
            summary.server_counts[label.value] for label in ServerLabel
        )
        assert labelled == summary.num_servers

    def test_zeus_campaign_is_ids2013_total(self, small_dataset, summary):
        zeus = next(
            c for c in small_dataset.truth.campaigns if c.name == "small-zeus"
        )
        verdicts = [
            v.verdict for v in summary.verdicts
            if zeus.servers <= v.campaign.servers
        ]
        assert verdicts == ["ids2013_total"]

    def test_new_servers_found(self, summary):
        # The iframe campaign has 2 IDS-known victims; the rest must be
        # confirmed as "New Servers" through shared UA/path patterns.
        assert summary.server_counts[ServerLabel.NEW_SERVER.value] > 0

    def test_fp_updated_not_larger_than_fp(self, summary):
        assert summary.fp_campaigns_updated <= summary.fp_campaigns
        assert summary.fp_servers_updated <= summary.fp_servers

    def test_fp_rate_definition(self, summary):
        assert summary.fp_rate == pytest.approx(
            summary.fp_servers / summary.total_trace_servers
        )

    def test_table_rows_well_formed(self, summary):
        row2 = summary.table2_row()
        row3 = summary.table3_row()
        assert row2["SMASH"] == summary.num_campaigns
        assert row3["SMASH"] == summary.num_servers
        assert all(isinstance(v, int) for v in row2.values())

    def test_single_client_track(self, summary_single):
        assert all(
            v.campaign.num_clients == 1 for v in summary_single.verdicts
        )

    def test_false_negatives_reports_missed_threats(
        self, verifier, small_dataset, small_result
    ):
        # small-fn is 60% covered by 2012 signatures and missed by SMASH,
        # so its threat group must appear in the FN analysis.
        missed = verifier.false_negatives(small_result)
        assert "small-fn" in missed


class TestVerdictPrecedence:
    def make_campaign(self, servers):
        return Campaign(
            campaign_id=0,
            main_index=0,
            servers=frozenset(servers),
            clients=frozenset({"c1", "c2"}),
        )

    def test_suspicious_requires_dead_majority(self, small_dataset, verifier):
        dead = sorted(small_dataset.liveness.dead_servers)
        unconfirmed_dead = [
            s for s in dead
            if s not in verifier.ids2012_servers
            and s not in verifier.ids2013_servers
            and not small_dataset.blacklists.is_confirmed(s)
        ]
        if len(unconfirmed_dead) >= 2:
            campaign = self.make_campaign(unconfirmed_dead[:2])
            assert verifier._campaign_verdict(campaign) == "suspicious"

    def test_false_positive_for_benign(self, small_dataset, verifier):
        benign = sorted(
            small_dataset.truth.benign_servers
            - small_dataset.truth.noise_servers
            - small_dataset.liveness.dead_servers
        )[:3]
        campaign = self.make_campaign(benign)
        assert verifier._campaign_verdict(campaign) == "false_positive"


class TestFigures:
    def test_size_distributions(self):
        campaigns = [
            Campaign(campaign_id=i, main_index=i,
                     servers=frozenset({f"s{i}a", f"s{i}b"}),
                     clients=frozenset({f"c{j}" for j in range(i + 1)}))
            for i in range(4)
        ]
        dist = size_distributions(campaigns)
        assert dist.campaign_sizes == [2, 2, 2, 2]
        assert dist.client_counts == [1, 2, 3, 4]
        assert dist.fraction_single_client() == 0.25
        assert dist.fraction_small_campaigns(18) == 1.0

    def test_persistence_series(self):
        def campaign(servers, clients):
            return Campaign(campaign_id=0, main_index=0,
                            servers=frozenset(servers), clients=frozenset(clients))

        day0 = [campaign({"a", "b"}, {"c1"})]
        day1 = [
            campaign({"a", "b"}, {"c1"}),        # persistent
            campaign({"x", "y"}, {"c1"}),        # agile: new servers, old client
            campaign({"p", "q"}, {"c9"}),        # brand new
        ]
        series = persistence_series_detailed([day0, day1])
        assert series[0].new_servers_new_clients == 2
        assert series[1].old_servers == 2
        assert series[1].new_servers_old_clients == 2
        assert series[1].new_servers_new_clients == 2

    def test_dimension_decomposition_sums_to_one(self, small_result):
        decomposition = dimension_decomposition(small_result)
        assert decomposition
        assert sum(decomposition.values()) == pytest.approx(1.0)
        for combo in decomposition:
            dims = set(combo.split("+"))
            assert dims <= {"urifile", "ipset", "whois"}

    def test_idf_series(self, small_dataset):
        all_series, malicious_series = idf_series(
            small_dataset.trace, small_dataset.ids2013
        )
        assert all_series[-1][1] == pytest.approx(1.0)
        assert malicious_series
        # Malicious servers sit in the low-popularity region (Figure 9).
        max_malicious = max(v for v, _ in malicious_series)
        max_all = max(v for v, _ in all_series)
        assert max_malicious <= max_all

    def test_malicious_filename_lengths(self, small_dataset):
        lengths = malicious_filename_lengths(
            small_dataset.trace, small_dataset.ids2013
        )
        assert lengths
        assert all(isinstance(v, int) and v >= 1 for v in lengths)

    def test_taxonomy_fractions(self, small_dataset, small_result):
        taxonomy = main_herd_taxonomy(small_result, small_dataset)
        if taxonomy:
            assert sum(taxonomy.values()) == pytest.approx(1.0)
            assert set(taxonomy) <= {
                "malicious",
                "referrer",
                "redirection",
                "similar_content",
                "unknown",
            }


class TestTables:
    def test_render_table(self):
        text = render_table(
            "Thresh",
            ["SMASH", "FP"],
            {"0.5": {"SMASH": 30, "FP": 8}, "0.8": {"SMASH": 17, "FP": 3}},
        )
        assert "Thresh" in text and "0.5" in text and "30" in text
        lines = text.splitlines()
        assert len(lines) == 4

    def test_render_mapping(self):
        text = render_mapping("Decomposition", {"urifile": 0.5371, "all": 0.1505})
        assert "0.5371" in text

    def test_render_mapping_empty(self):
        assert "empty" in render_mapping("x", {})
