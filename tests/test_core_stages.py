"""Unit tests for ASH mining, correlation, pruning and inference."""

import math

import pytest

from repro.config import CorrelationConfig, LouvainConfig, PruningConfig
from repro.core.ashmining import MiningOutcome, mine_herds
from repro.core.correlation import correlate, phi
from repro.core.inference import infer_campaigns
from repro.core.pruning import dominant_referrers, prune_ashes, referrer_host
from repro.core.results import CandidateAsh, Herd
from repro.graph.wgraph import WeightedGraph
from repro.httplog.records import HttpRequest
from repro.httplog.trace import HttpTrace
from repro.synth.oracles import RedirectOracle


def clique(graph, nodes, weight=1.0):
    nodes = list(nodes)
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            graph.add_edge(u, v, weight)


def outcome_from_graph(graph, dimension="client"):
    return mine_herds(graph, dimension)


def make_outcome(herd_servers, dimension, density=1.0):
    """Hand-build a MiningOutcome with complete-herd graphs."""
    graph = WeightedGraph()
    herds = []
    for index, servers in enumerate(herd_servers):
        clique(graph, servers)
        herds.append(
            Herd(dimension=dimension, index=index, servers=frozenset(servers),
                 density=density)
        )
    return MiningOutcome(
        herds=tuple(herds),
        dropped=frozenset(),
        modularity=0.0,
        graph=graph,
    )


class TestMineHerds:
    def test_two_cliques_two_herds(self):
        graph = WeightedGraph()
        clique(graph, ["a", "b", "c"])
        clique(graph, ["x", "y", "z"])
        outcome = mine_herds(graph, "client")
        assert len(outcome.herds) == 2
        assert all(herd.density == 1.0 for herd in outcome.herds)
        assert outcome.dropped == frozenset()

    def test_isolated_nodes_dropped(self):
        graph = WeightedGraph()
        clique(graph, ["a", "b"])
        graph.add_node("alone")
        outcome = mine_herds(graph, "client")
        assert outcome.dropped == frozenset({"alone"})

    def test_herd_of_mapping(self):
        graph = WeightedGraph()
        clique(graph, ["a", "b"])
        outcome = mine_herds(graph, "client")
        assert outcome.herd_of()["a"].servers == frozenset({"a", "b"})

    def test_refinement_splits_resolution_limit_fusion(self):
        # A tight clique chained to a long path of weak edges: plain
        # modularity at small scale may fuse them; refinement must keep
        # the clique intact as its own herd.
        graph = WeightedGraph()
        clique(graph, [f"k{i}" for i in range(6)], weight=1.0)
        chain = [f"k0"] + [f"p{i}" for i in range(12)]
        for a, b in zip(chain, chain[1:]):
            graph.add_edge(a, b, 0.15)
        outcome = mine_herds(graph, "client")
        herd_of = outcome.herd_of()
        clique_herds = {herd_of[f"k{i}"].index for i in range(6)}
        assert len(clique_herds) == 1  # clique not shredded

    def test_refinement_disabled(self):
        graph = WeightedGraph()
        clique(graph, ["a", "b", "c"])
        outcome = mine_herds(graph, "client", LouvainConfig(refine=False))
        assert len(outcome.herds) == 1


class TestPhi:
    def test_paper_shape(self):
        # Phi is the S-shaped normaliser: small herds score low.
        assert phi(0) < phi(2) < phi(4) < phi(10) < phi(50)

    def test_midpoint_at_mu(self):
        assert phi(4.0, mu=4.0, sigma=5.5) == pytest.approx(0.5)

    def test_limits(self):
        assert phi(1000) == pytest.approx(1.0)
        assert 0.0 < phi(0) < 0.5

    def test_erf_form(self):
        x, mu, sigma = 7.0, 4.0, 5.5
        assert phi(x, mu, sigma) == pytest.approx(
            0.5 * (1 + math.erf((x - mu) / sigma))
        )


class TestCorrelate:
    def test_single_dimension_large_herd_passes(self):
        servers = [f"s{i}" for i in range(12)]
        main = make_outcome([servers], "client")
        secondary = {"urifile": make_outcome([servers], "urifile")}
        outcome = correlate(main, secondary, CorrelationConfig())
        assert all(outcome.scores[s] >= 0.8 for s in servers)
        assert len(outcome.candidate_ashes) == 1

    def test_small_herd_single_dimension_fails(self):
        servers = ["s0", "s1", "s2"]
        main = make_outcome([servers], "client")
        secondary = {"urifile": make_outcome([servers], "urifile")}
        outcome = correlate(main, secondary, CorrelationConfig())
        # Phi(3) ~ 0.43 < 0.8: the paper's "cross check with more
        # dimensions" requirement.
        assert outcome.candidate_ashes == ()

    def test_small_herd_two_dimensions_pass(self):
        servers = ["s0", "s1", "s2", "s3"]
        main = make_outcome([servers], "client")
        secondary = {
            "urifile": make_outcome([servers], "urifile"),
            "ipset": make_outcome([servers], "ipset"),
        }
        outcome = correlate(main, secondary, CorrelationConfig())
        # 2 x Phi(4) = 1.0 >= 0.8.
        assert all(outcome.scores[s] >= 0.8 for s in servers)
        assert len(outcome.candidate_ashes) == 2

    def test_score_accumulates_dimensions(self):
        servers = [f"s{i}" for i in range(8)]
        main = make_outcome([servers], "client")
        secondary = {
            "urifile": make_outcome([servers], "urifile"),
            "ipset": make_outcome([servers], "ipset"),
            "whois": make_outcome([servers], "whois"),
        }
        outcome = correlate(main, secondary, CorrelationConfig())
        expected = 3 * phi(8)
        assert outcome.scores["s0"] == pytest.approx(expected)
        assert set(outcome.contributions["s0"]) == {"urifile", "ipset", "whois"}

    def test_intersection_density_ignores_hangers_on(self):
        # Main herd = campaign clique + loosely attached extras; the
        # intersection with the secondary herd is just the campaign, and
        # its density (1.0) is what the score must use.
        campaign = [f"s{i}" for i in range(10)]
        extras = [f"x{i}" for i in range(6)]
        graph = WeightedGraph()
        clique(graph, campaign, weight=1.0)
        for extra in extras:
            graph.add_edge(extra, campaign[0], 0.2)
        main = MiningOutcome(
            herds=(Herd(dimension="client", index=0,
                        servers=frozenset(campaign + extras), density=0.3),),
            dropped=frozenset(), modularity=0.0, graph=graph,
        )
        secondary = {"urifile": make_outcome([campaign], "urifile")}
        outcome = correlate(main, secondary, CorrelationConfig())
        assert outcome.scores["s0"] == pytest.approx(phi(10))
        assert all(extra not in outcome.scores for extra in extras)

    def test_threshold_override(self):
        servers = [f"s{i}" for i in range(8)]
        main = make_outcome([servers], "client")
        secondary = {"urifile": make_outcome([servers], "urifile")}
        strict = correlate(main, secondary, CorrelationConfig(), thresh=1.5)
        assert strict.candidate_ashes == ()

    def test_disjoint_herds_no_scores(self):
        main = make_outcome([["a", "b"]], "client")
        secondary = {"urifile": make_outcome([["x", "y"]], "urifile")}
        outcome = correlate(main, secondary, CorrelationConfig())
        assert outcome.scores == {}

    def test_singleton_survivor_ash_removed(self):
        # Only one server of the intersection survives the threshold:
        # the group "with only one server left" must be removed.
        servers = ["a", "b", "c", "d", "e", "f", "g", "h"]
        main = make_outcome([servers], "client")
        secondary = {
            "urifile": make_outcome([servers[:8]], "urifile"),
            "ipset": make_outcome([["a", "zz"]], "ipset"),
        }
        outcome = correlate(main, secondary, CorrelationConfig(), thresh=0.8)
        ipset_ashes = [
            ash for ash in outcome.candidate_ashes
            if ash.secondary_dimension == "ipset"
        ]
        assert ipset_ashes == []


def make_request(client, host, referrer="", status=200):
    return HttpRequest(
        timestamp=0.0,
        client=client,
        host=host,
        server_ip="1.1.1.1",
        uri="/x.html",
        referrer=referrer,
        status=status,
    )


class TestReferrerHost:
    def test_url(self):
        assert referrer_host("http://www.landing.com/index.html") == "landing.com"

    def test_bare_host(self):
        assert referrer_host("landing.com") == "landing.com"

    def test_empty(self):
        assert referrer_host("") is None


class TestPruning:
    def test_redirection_group_collapses(self):
        oracle = RedirectOracle()
        oracle.add_chain(["hop1.to", "hop2.to", "landing.com"])
        trace = HttpTrace([make_request("c1", "hop1.to")])
        ashes = (CandidateAsh(0, "urifile", 0, frozenset({"hop1.to", "hop2.to", "landing.com"})),)
        pruned, report = prune_ashes(ashes, trace, oracle)
        # Whole chain maps to the landing server -> singleton -> dropped.
        assert pruned == ()
        assert report.dropped_ashes == 1
        assert report.redirection_replacements["hop1.to"] == "landing.com"

    def test_referrer_group_collapses(self):
        requests = []
        for third_party in ("w1.com", "w2.com", "w3.com"):
            requests.append(
                make_request("c1", third_party, referrer="http://landing.com/")
            )
        trace = HttpTrace(requests)
        ashes = (CandidateAsh(0, "urifile", 0, frozenset({"w1.com", "w2.com", "w3.com"})),)
        pruned, report = prune_ashes(ashes, trace, None)
        assert pruned == ()
        assert set(report.referrer_replacements) == {"w1.com", "w2.com", "w3.com"}

    def test_partial_chain_keeps_rest(self):
        oracle = RedirectOracle()
        oracle.add_chain(["hop1.to", "landing.com"])
        trace = HttpTrace([make_request("c1", "hop1.to"), make_request("c1", "evil.com")])
        ashes = (CandidateAsh(0, "urifile", 0, frozenset({"hop1.to", "evil.com"})),)
        pruned, _ = prune_ashes(ashes, trace, oracle)
        assert pruned[0].servers == frozenset({"landing.com", "evil.com"})

    def test_pruning_disabled(self):
        oracle = RedirectOracle()
        oracle.add_chain(["hop1.to", "landing.com"])
        trace = HttpTrace([make_request("c1", "hop1.to"), make_request("c1", "x.com")])
        ashes = (CandidateAsh(0, "urifile", 0, frozenset({"hop1.to", "x.com"})),)
        config = PruningConfig(
            prune_redirection_groups=False,
            prune_referrer_groups=False,
        )
        pruned, report = prune_ashes(ashes, trace, oracle, config)
        assert pruned[0].servers == frozenset({"hop1.to", "x.com"})
        assert not report.redirection_replacements

    def test_dominant_referrer_needs_majority(self):
        trace = HttpTrace([
            make_request("c1", "s.com", referrer="http://landing.com/"),
            make_request("c2", "s.com"),
            make_request("c3", "s.com"),
        ])
        assert "s.com" not in dominant_referrers(trace)


class TestInferCampaigns:
    def test_merge_by_main_herd(self):
        # Bagle: download tier and C&C tier are different urifile ASHs in
        # the same main herd -> one campaign (Section III-E).
        trace = HttpTrace([
            make_request("bot1", server)
            for server in ("dl1.com", "dl2.com", "cc1.com", "cc2.com")
        ] + [make_request("bot2", server)
             for server in ("dl1.com", "dl2.com", "cc1.com", "cc2.com")])
        ashes = (
            CandidateAsh(0, "urifile", 0, frozenset({"dl1.com", "dl2.com"})),
            CandidateAsh(0, "urifile", 1, frozenset({"cc1.com", "cc2.com"})),
            CandidateAsh(1, "ipset", 0, frozenset({"other1.com", "other2.com"})),
        )
        main = make_outcome(
            [["dl1.com", "dl2.com", "cc1.com", "cc2.com"],
             ["other1.com", "other2.com"]],
            "client",
        )
        campaigns = infer_campaigns(ashes, main, trace, {}, {})
        assert len(campaigns) == 2
        merged = next(c for c in campaigns if "dl1.com" in c.servers)
        assert merged.servers == frozenset({"dl1.com", "dl2.com", "cc1.com", "cc2.com"})
        assert merged.clients == frozenset({"bot1", "bot2"})

    def test_scores_attached(self):
        trace = HttpTrace([make_request("c1", "a.com"), make_request("c1", "b.com")])
        ashes = (CandidateAsh(0, "urifile", 0, frozenset({"a.com", "b.com"})),)
        main = make_outcome([["a.com", "b.com"]], "client")
        campaigns = infer_campaigns(
            ashes,
            main,
            trace,
            scores={"a.com": 1.2, "b.com": 0.9},
            contributions={"a.com": {"urifile": 1.2}, "b.com": {"urifile": 0.9}},
        )
        assert campaigns[0].server_scores["a.com"] == 1.2
        assert campaigns[0].dimensions_of("a.com") == frozenset({"urifile"})
