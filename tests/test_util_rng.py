"""Unit tests for the deterministic RNG plumbing."""

from repro.util.rng import child_rng, make_rng


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42)
        b = make_rng(42)
        assert a.integers(0, 1000, size=10).tolist() == b.integers(0, 1000, size=10).tolist()

    def test_different_seed_different_stream(self):
        a = make_rng(1).integers(0, 10**9, size=8).tolist()
        b = make_rng(2).integers(0, 10**9, size=8).tolist()
        assert a != b


class TestChildRng:
    def test_deterministic(self):
        a = child_rng(7, "benign", 3)
        b = child_rng(7, "benign", 3)
        assert a.integers(0, 10**9, size=8).tolist() == b.integers(0, 10**9, size=8).tolist()

    def test_key_path_separates_streams(self):
        a = child_rng(7, "benign").integers(0, 10**9, size=8).tolist()
        b = child_rng(7, "campaign").integers(0, 10**9, size=8).tolist()
        assert a != b

    def test_key_order_matters(self):
        a = child_rng(7, "a", "b").integers(0, 10**9, size=8).tolist()
        b = child_rng(7, "b", "a").integers(0, 10**9, size=8).tolist()
        assert a != b

    def test_no_prefix_collision(self):
        # ("ab",) and ("a", "b") must map to different streams.
        a = child_rng(7, "ab").integers(0, 10**9, size=8).tolist()
        b = child_rng(7, "a", "b").integers(0, 10**9, size=8).tolist()
        assert a != b

    def test_seed_separates_streams(self):
        a = child_rng(1, "x").integers(0, 10**9, size=8).tolist()
        b = child_rng(2, "x").integers(0, 10**9, size=8).tolist()
        assert a != b
