"""Unit tests for repro.util.stats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import ecdf, percentile_of, summarize, value_at_fraction


class TestEcdf:
    def test_empty(self):
        assert ecdf([]) == []

    def test_single_value(self):
        assert ecdf([5]) == [(5, 1.0)]

    def test_duplicates_collapse(self):
        points = ecdf([1, 1, 2])
        assert points == [(1, pytest.approx(2 / 3)), (2, 1.0)]

    def test_monotone_and_ends_at_one(self):
        points = ecdf([3, 1, 4, 1, 5, 9, 2, 6])
        values = [p[1] for p in points]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=50))
    def test_properties(self, data):
        points = ecdf(data)
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        assert xs == sorted(set(data))
        assert ys[-1] == pytest.approx(1.0)
        assert all(0 < y <= 1.0 + 1e-12 for y in ys)


class TestPercentileOf:
    def test_empty(self):
        assert percentile_of([], 10) == 0.0

    def test_all_below(self):
        assert percentile_of([1, 2, 3], 10) == 1.0

    def test_none_below(self):
        assert percentile_of([5, 6], 1) == 0.0

    def test_half(self):
        assert percentile_of([1, 2, 3, 4], 2) == 0.5


class TestValueAtFraction:
    def test_median(self):
        assert value_at_fraction([1, 2, 3, 4, 5], 0.5) == 3

    def test_full(self):
        assert value_at_fraction([1, 2, 3], 1.0) == 3

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            value_at_fraction([], 0.5)

    def test_bad_fraction_raises(self):
        with pytest.raises(ValueError):
            value_at_fraction([1], 0.0)
        with pytest.raises(ValueError):
            value_at_fraction([1], 1.5)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=40),
           st.floats(0.01, 1.0))
    def test_consistency_with_percentile(self, data, fraction):
        value = value_at_fraction(data, fraction)
        assert percentile_of(data, value) >= fraction - 1e-9


class TestSummarize:
    def test_basic(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.count == 5
        assert s.minimum == 1
        assert s.maximum == 5
        assert s.mean == 3
        assert s.median == 3

    def test_even_median(self):
        assert summarize([1, 2, 3, 4]).median == 2.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])
