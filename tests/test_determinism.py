"""Hash-seed determinism regression tests (the PR-2 headline bug).

The pipeline's output used to depend on ``PYTHONHASHSEED``: set/frozenset
iteration fed graph node/edge insertion order, which changed Louvain's
node indexing, its seeded shuffle, and its equal-gain tie-breaks — the
same materialised trace produced different campaign partitions under
different interpreter hash seeds.  These tests run the full pipeline in
subprocesses pinned to *different* hash seeds and assert the outputs are
byte-identical, so an iteration-order regression anywhere in the mining
core fails loudly.

In-process tests cannot cover this (one interpreter has one hash seed),
hence the subprocess harness.  The suite itself runs under whatever hash
seed pytest inherited — typically randomised — which is exactly the
point: nothing below may depend on it.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

SRC_DIR = Path(__file__).resolve().parent.parent / "src"

#: Hash seeds chosen to have produced four distinct outputs before the fix.
HASH_SEEDS = (1, 2, 3)


def _run_python(args: list[str], hash_seed: int, cwd: Path) -> str:
    """Run ``python <args>`` under a pinned PYTHONHASHSEED; return stdout."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = str(SRC_DIR) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, *args],
        env=env,
        cwd=cwd,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"subprocess failed under PYTHONHASHSEED={hash_seed}:\n"
        f"{completed.stdout}\n{completed.stderr}"
    )
    return completed.stdout


@pytest.fixture(scope="module")
def day_dir(tmp_path_factory) -> Path:
    """One materialised small-scenario day (trace + whois + redirects)."""
    target = tmp_path_factory.mktemp("determinism") / "day0"
    _run_python(
        ["-m", "repro", "generate", "--scenario", "small", "--out", str(target)],
        hash_seed=0,
        cwd=target.parent,
    )
    return target


def test_run_output_is_hash_seed_invariant(day_dir: Path, tmp_path: Path) -> None:
    """`python -m repro run` writes byte-identical JSON under any hash seed."""
    outputs: list[bytes] = []
    for seed in HASH_SEEDS:
        out = tmp_path / f"campaigns_{seed}.json"
        _run_python(
            [
                "-m",
                "repro",
                "run",
                "--trace",
                str(day_dir / "trace.jsonl"),
                "--whois",
                str(day_dir / "whois.json"),
                "--redirects",
                str(day_dir / "redirects.json"),
                "--out",
                str(out),
            ],
            hash_seed=seed,
            cwd=tmp_path,
        )
        outputs.append(out.read_bytes())
    assert outputs[0] == outputs[1] == outputs[2], (
        "campaign JSON differs across PYTHONHASHSEED values"
    )
    assert b'"campaigns"' in outputs[0]  # sanity: the run produced a report


_SWEEP_SCRIPT = """\
import json, sys
from repro.core.pipeline import SmashPipeline
from repro.eval.export import result_to_dict
from repro.httplog.loader import read_jsonl

trace = read_jsonl(sys.argv[1])
results = SmashPipeline().run_sweep(trace, thresholds=(0.5, 0.8, 1.0))
print(json.dumps(
    {str(t): result_to_dict(r) for t, r in results.items()}, sort_keys=True
))
"""


def test_run_sweep_is_hash_seed_invariant(day_dir: Path, tmp_path: Path) -> None:
    """`run_sweep` produces identical results at every threshold and seed."""
    dumps = [
        _run_python(
            ["-c", _SWEEP_SCRIPT, str(day_dir / "trace.jsonl")],
            hash_seed=seed,
            cwd=tmp_path,
        )
        for seed in HASH_SEEDS[:2]
    ]
    assert dumps[0] == dumps[1]


_STREAM_SCRIPT = """\
import json
from repro.stream import StreamingSmash
from repro.synth import TraceGenerator, small_scenario

engine = StreamingSmash(window_size=2)
generator = TraceGenerator(small_scenario(seed=7, days=3))
days = []
for dataset in generator.iter_days():
    update = engine.ingest_dataset(dataset)
    days.append({
        "day": update.day,
        "detected": sorted(update.detected_servers),
        "events": sorted(e.kind + ":" + e.uid for e in update.events),
    })
engine.close()
print(json.dumps({"days": days, "lifetimes": engine.tracker.lifetimes()},
                 sort_keys=True))
"""


def test_stream_is_hash_seed_invariant(tmp_path: Path) -> None:
    """A 3-day `repro.stream` run tracks identical campaigns at any seed."""
    dumps = [
        _run_python(["-c", _STREAM_SCRIPT], hash_seed=seed, cwd=tmp_path)
        for seed in HASH_SEEDS[:2]
    ]
    assert dumps[0] == dumps[1]
    assert '"lifetimes"' in dumps[0]


def test_scored_alert_stream_is_hash_seed_invariant(tmp_path: Path) -> None:
    """`smash stream` with evidence-driven scoring writes a byte-identical
    alerts JSONL under any hash seed (scores, severities and suppression
    are deterministic functions of tracker history + evidence sets)."""
    alert_files: list[bytes] = []
    for seed in HASH_SEEDS[:2]:
        alerts = tmp_path / f"alerts_{seed}.jsonl"
        _run_python(
            [
                "-m",
                "repro",
                "stream",
                "--scenario",
                "small",
                "--days",
                "3",
                "--ids",
                "scenario",
                "--blacklist",
                "scenario",
                "--min-severity",
                "warning",
                "--alerts",
                str(alerts),
            ],
            hash_seed=seed,
            cwd=tmp_path,
        )
        alert_files.append(alerts.read_bytes())
    assert alert_files[0] == alert_files[1]
    lines = [json.loads(line) for line in alert_files[0].splitlines()]
    assert lines, "expected at least one alert from the small scenario"
    assert all("severity" in line and "score" in line for line in lines)
    assert all(line["severity"] in ("warning", "critical") for line in lines)


# -- in-process order-invariance guards -------------------------------------------
#
# Subprocesses prove the end-to-end property; these unit guards pin the
# mechanism — Louvain and subgraph extraction must be functions of graph
# *contents*, not of insertion order.


def test_louvain_is_insertion_order_invariant() -> None:
    from repro.graph.louvain import louvain_communities
    from repro.graph.wgraph import WeightedGraph

    edges = [
        ("a", "b", 1.0),
        ("b", "c", 1.0),
        ("a", "c", 0.5),
        ("d", "e", 1.0),
        ("e", "f", 1.0),
        ("d", "f", 0.5),
        ("c", "d", 0.05),
        ("g", "g", 2.0),
    ]
    forward = WeightedGraph()
    for u, v, w in edges:
        forward.add_edge(u, v, w)
    backward = WeightedGraph()
    for u, v, w in reversed(edges):
        backward.add_edge(v, u, w)

    first = louvain_communities(forward)
    second = louvain_communities(backward)
    assert first.communities == second.communities
    assert first.partition == second.partition
    assert first.modularity == second.modularity


def test_subgraph_iteration_order_is_canonical() -> None:
    from repro.graph.wgraph import WeightedGraph

    graph = WeightedGraph()
    for u, v in [("z", "y"), ("y", "x"), ("x", "z"), ("w", "z")]:
        graph.add_edge(u, v, 1.0)
    # frozenset argument: iteration order of the input set must not leak
    # into the subgraph's node order.
    sub = graph.subgraph(frozenset(["z", "x", "y"]))
    assert sub.nodes == ["x", "y", "z"]
    assert sub == graph.subgraph(["y", "z", "x"])


def test_weighted_graph_structural_equality() -> None:
    from repro.graph.wgraph import WeightedGraph

    one = WeightedGraph()
    one.add_edge("a", "b", 1.0)
    one.add_node("c")
    two = WeightedGraph()
    two.add_node("c")
    two.add_edge("b", "a", 1.0)
    assert one == two
    two.add_edge("a", "c", 0.5)
    assert one != two
    assert one != "not a graph"
