"""Edge cases and failure injection across the pipeline."""


from repro.config import PreprocessConfig, SmashConfig
from repro.core.pipeline import SmashPipeline
from repro.httplog.records import HttpRequest
from repro.httplog.trace import HttpTrace
from repro.synth.oracles import RedirectOracle
from repro.whois.registry import WhoisRegistry


def request(client, host, uri="/x.html", ip="1.1.1.1", **kw):
    return HttpRequest(
        timestamp=0.0, client=client, host=host, server_ip=ip, uri=uri, **kw
    )


class TestDegenerateTraces:
    def test_everything_filtered_by_idf(self):
        """A trace of one hugely popular server yields no campaigns."""
        trace = HttpTrace([request(f"c{i}", "giant.com") for i in range(50)])
        config = SmashConfig().replace(
            preprocess=PreprocessConfig(idf_threshold=10)
        )
        result = SmashPipeline(config).run(trace)
        assert result.campaigns == ()
        assert result.detected_servers == frozenset()

    def test_single_request_trace(self):
        result = SmashPipeline().run(HttpTrace([request("c1", "only.com")]))
        assert result.campaigns == ()
        assert "only.com" in result.main_dimension_dropped

    def test_all_servers_one_client(self):
        """Everything collapses into one single-client herd; nothing has
        secondary-dimension support, so nothing is flagged."""
        trace = HttpTrace([
            request("c1", f"site{i}.com", uri=f"/page{i}.html", ip=f"9.9.9.{i}")
            for i in range(10)
        ])
        result = SmashPipeline().run(trace)
        assert result.detected_servers == frozenset()
        herds = result.herds_by_dimension["client"]
        assert len(herds) == 1 and len(herds[0].servers) == 10

    def test_ip_literal_servers_flow_through(self):
        """IP-only campaigns work end to end (servers are 'both IP
        addresses and domain names', Section I footnote)."""
        requests = []
        for bot in ("b1", "b2"):
            for index in range(8):
                requests.append(
                    request(bot, f"10.0.0.{index + 1}", uri="/gate.php",
                            ip=f"10.0.0.{index + 1}")
                )
        # Enough benign servers that the campaign file is not "ubiquitous"
        # by fraction, and bots are not the only clients in the universe.
        for i in range(40):
            requests.append(
                request(f"x{i % 8}", f"benign{i}.com", uri=f"/p{i}.html",
                        ip=f"11.0.0.{i + 1}")
            )
        result = SmashPipeline().run(HttpTrace(requests))
        detected = result.detected_servers
        assert {f"10.0.0.{i + 1}" for i in range(8)} <= detected

    def test_trace_without_referrers_prunes_nothing(self):
        trace = HttpTrace([request("c1", "a.com"), request("c1", "b.com")])
        result = SmashPipeline().run(trace)
        assert result.prune_report.referrer_replacements == {}

    def test_unknown_redirect_oracle_servers_harmless(self):
        oracle = RedirectOracle()
        oracle.add_chain(["not-in-trace.to", "also-not.com"])
        trace = HttpTrace([request("c1", "a.com"), request("c2", "a.com")])
        result = SmashPipeline().run(trace, redirects=oracle)
        assert result.campaigns == ()


class TestWhoisEdgeCases:
    def test_empty_registry(self):
        trace = HttpTrace([request("c1", "a.com"), request("c2", "b.com")])
        result = SmashPipeline().run(trace, whois=WhoisRegistry())
        assert "whois" in result.herds_by_dimension
        assert result.herds_by_dimension["whois"] == ()

    def test_registry_for_unrelated_domains(self, small_dataset):
        """A registry of irrelevant records changes nothing."""
        from repro.whois.record import WhoisRecord
        registry = WhoisRegistry([WhoisRecord(domain="unrelated.example")])
        result = SmashPipeline().run(small_dataset.trace, whois=registry)
        assert isinstance(result.detected_servers, frozenset)


class TestThresholdExtremes:
    def test_zero_threshold_detects_supersets(self, small_dataset):
        pipeline = SmashPipeline()
        loose = pipeline.run(
            small_dataset.trace,
            whois=small_dataset.whois,
            redirects=small_dataset.redirects,
            thresh=0.0,
        )
        strict = pipeline.run(
            small_dataset.trace,
            whois=small_dataset.whois,
            redirects=small_dataset.redirects,
            thresh=0.8,
        )
        assert strict.detected_servers <= loose.detected_servers

    def test_huge_threshold_detects_nothing(self, small_dataset):
        result = SmashPipeline().run(
            small_dataset.trace,
            whois=small_dataset.whois,
            redirects=small_dataset.redirects,
            thresh=100.0,
        )
        assert result.detected_servers == frozenset()
        assert result.campaigns == ()

    def test_scores_independent_of_threshold(self, small_dataset):
        pipeline = SmashPipeline()
        mined = pipeline.mine(small_dataset.trace, whois=small_dataset.whois)
        low = pipeline.finish(mined, thresh=0.5)
        high = pipeline.finish(mined, thresh=1.5)
        assert low.scores == high.scores


class TestEvasionScenarios:
    """Section VI's evasion discussion, executable."""

    def make_campaign_trace(self, extra_requests=()):
        requests = []
        servers = [f"evil{i}.com" for i in range(8)]
        for bot in ("b1", "b2"):
            for server in servers:
                requests.append(request(bot, server, uri="/gate.php", ip="6.6.6.6"))
        for i in range(8):
            requests.append(request(f"x{i}", "benign.com", uri=f"/p{i}.html"))
        requests.extend(extra_requests)
        return HttpTrace(requests), servers

    def test_baseline_campaign_detected(self):
        trace, servers = self.make_campaign_trace()
        result = SmashPipeline().run(trace)
        assert set(servers) <= result.detected_servers

    def test_bots_visiting_benign_sites_does_not_hide_campaign(self):
        """Evading the main dimension by blending: bots also visit benign
        servers; those have other clients, so eq. 1 keeps them apart."""
        extra = []
        for bot in ("b1", "b2"):
            for i in range(4):
                extra.append(request(bot, f"blend{i}.com", uri="/index.html"))
        # The blend targets have a real audience.
        for i in range(4):
            for j in range(10):
                extra.append(request(f"aud{j}", f"blend{i}.com", uri=f"/q{j}.html"))
        trace, servers = self.make_campaign_trace(extra)
        result = SmashPipeline().run(trace)
        assert set(servers) <= result.detected_servers
        # The blended benign servers do not get dragged in.
        assert not any(f"blend{i}.com" in result.detected_servers for i in range(4))

    def test_splitting_filenames_evades_urifile_dimension(self):
        """Evading the URI-file dimension: per-server filenames kill the
        file herd; with no other secondary dimension the campaign drops
        below thresh (the cost the paper says attackers must pay)."""
        requests = []
        for bot in ("b1", "b2"):
            for index in range(8):
                requests.append(
                    request(bot, f"evade{index}.com", uri=f"/u{index}.php",
                            ip=f"7.7.7.{index}")
                )
        for i in range(8):
            requests.append(request(f"x{i}", "benign.com", uri=f"/p{i}.html"))
        result = SmashPipeline().run(HttpTrace(requests))
        assert not any(
            f"evade{i}.com" in result.detected_servers for i in range(8)
        )
