"""Property-based tests (hypothesis) on the core invariants.

These complement the unit suites: instead of fixed examples they assert
the algebraic properties the pipeline's correctness rests on — similarity
bounds and symmetry, Louvain partition validity, modularity improvement,
preprocessing conservation laws, correlation score bounds.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CorrelationConfig, DimensionConfig, PreprocessConfig
from repro.core.correlation import phi
from repro.core.dimensions.client import client_similarity
from repro.core.dimensions.urifile import file_similarity, filename_similarity
from repro.core.preprocess import preprocess
from repro.graph.louvain import louvain_communities
from repro.graph.modularity import modularity
from repro.graph.wgraph import WeightedGraph
from repro.httplog.records import HttpRequest
from repro.httplog.trace import HttpTrace

# -- strategies -----------------------------------------------------------------

client_sets = st.frozensets(
    st.integers(0, 20).map(lambda i: f"c{i}"), max_size=12
)
filenames = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=40,
)
file_sets = st.frozensets(filenames, min_size=1, max_size=8)


def trace_strategy():
    request = st.builds(
        HttpRequest,
        timestamp=st.floats(0, 1000, allow_nan=False),
        client=st.integers(0, 8).map(lambda i: f"c{i}"),
        host=st.sampled_from(
            ["a.xyz.com", "b.xyz.com", "other.net", "www.third.org", "10.0.0.1"]
        ),
        server_ip=st.sampled_from(["1.1.1.1", "2.2.2.2"]),
        uri=st.sampled_from(["/x.php", "/y/z.html", "/", "/a.php?p=1"]),
    )
    return st.lists(request, min_size=1, max_size=40).map(HttpTrace)


# -- similarity properties -------------------------------------------------------


class TestSimilarityProperties:
    @given(client_sets, client_sets)
    def test_client_similarity_bounds_and_symmetry(self, a, b):
        value = client_similarity(a, b)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(client_similarity(b, a))

    @given(client_sets)
    def test_client_similarity_identity(self, a):
        if a:
            assert client_similarity(a, a) == pytest.approx(1.0)

    @given(client_sets, client_sets)
    def test_client_similarity_one_iff_equal(self, a, b):
        if a and b and client_similarity(a, b) == pytest.approx(1.0):
            assert a == b

    @given(filenames, filenames)
    def test_filename_similarity_binary_and_symmetric(self, a, b):
        value = filename_similarity(a, b)
        assert value in (0.0, 1.0)
        assert value == filename_similarity(b, a)

    @given(filenames)
    def test_filename_self_similarity(self, name):
        assert filename_similarity(name, name) == 1.0

    @given(file_sets, file_sets)
    def test_file_similarity_bounds_and_symmetry(self, a, b):
        config = DimensionConfig()
        value = file_similarity(a, b, config)
        assert 0.0 <= value <= 1.0 + 1e-12
        assert value == pytest.approx(file_similarity(b, a, config))

    @given(file_sets)
    def test_file_similarity_identity(self, a):
        assert file_similarity(a, a) == pytest.approx(1.0)


# -- phi properties ----------------------------------------------------------------


class TestPhiProperties:
    @given(st.floats(-100, 1000, allow_nan=False))
    def test_bounds(self, x):
        assert 0.0 <= phi(x) <= 1.0

    @given(st.floats(0, 500), st.floats(0, 500))
    def test_monotone(self, a, b):
        low, high = sorted((a, b))
        assert phi(low) <= phi(high) + 1e-12

    @given(st.floats(0.1, 20.0))
    def test_sigma_controls_steepness(self, sigma):
        # At x = mu the value is exactly one half regardless of sigma.
        assert phi(4.0, mu=4.0, sigma=sigma) == pytest.approx(0.5)


# -- graph properties ----------------------------------------------------------------


def graph_from_edges(edges):
    graph = WeightedGraph()
    for u, v, w in edges:
        graph.add_edge(f"n{u}", f"n{v}", w)
    return graph


edges_strategy = st.lists(
    st.tuples(st.integers(0, 10), st.integers(0, 10), st.floats(0.01, 5.0)),
    min_size=1,
    max_size=30,
)


class TestLouvainProperties:
    @settings(max_examples=30, deadline=None)
    @given(edges_strategy)
    def test_partition_is_a_partition(self, edges):
        graph = graph_from_edges(edges)
        result = louvain_communities(graph)
        seen = set()
        for community in result.communities:
            assert not (community & seen), "communities must be disjoint"
            seen |= community
        assert seen == set(graph.nodes)

    @settings(max_examples=30, deadline=None)
    @given(edges_strategy)
    def test_louvain_not_worse_than_singletons(self, edges):
        graph = graph_from_edges(edges)
        result = louvain_communities(graph)
        singletons = {node: i for i, node in enumerate(graph.nodes)}
        assert result.modularity >= modularity(graph, singletons) - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(edges_strategy)
    def test_reported_modularity_matches_partition(self, edges):
        graph = graph_from_edges(edges)
        result = louvain_communities(graph)
        assert result.modularity == pytest.approx(
            modularity(graph, result.partition)
        )


# -- preprocessing properties ------------------------------------------------------------


class TestPreprocessProperties:
    @settings(max_examples=30, deadline=None)
    @given(trace_strategy())
    def test_conservation(self, trace):
        kept, report = preprocess(trace, PreprocessConfig(idf_threshold=3))
        assert report.kept_requests == len(kept)
        assert report.kept_servers == len(kept.servers)
        assert report.kept_requests <= report.raw_requests
        assert report.aggregated_servers <= report.raw_servers
        assert 0.0 <= report.traffic_reduction <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(trace_strategy())
    def test_popularity_bound_holds(self, trace):
        config = PreprocessConfig(idf_threshold=2)
        kept, _ = preprocess(trace, config)
        for count in kept.client_counts().values():
            assert count <= 2

    @settings(max_examples=30, deadline=None)
    @given(trace_strategy())
    def test_idempotent(self, trace):
        config = PreprocessConfig(idf_threshold=3)
        once, _ = preprocess(trace, config)
        twice, _ = preprocess(once, config)
        assert once == twice


# -- correlation properties ----------------------------------------------------------------


class TestCorrelationProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 12), st.integers(1, 3))
    def test_score_bounded_by_dimension_count(self, herd_size, num_dims):
        from repro.core.ashmining import mine_herds
        from repro.core.correlation import correlate

        servers = [f"s{i}" for i in range(herd_size)]
        graph = WeightedGraph()
        for i, first in enumerate(servers):
            for second in servers[i + 1:]:
                graph.add_edge(first, second, 1.0)
        outcome = mine_herds(graph, "client")
        secondary = {
            f"dim{d}": mine_herds(graph, f"dim{d}") for d in range(num_dims)
        }
        result = correlate(outcome, secondary, CorrelationConfig(), thresh=0.0)
        for score in result.scores.values():
            assert 0.0 <= score <= num_dims + 1e-9
