"""Tests for the synthetic dataset generator and scenario specs."""

import pytest

from repro.errors import ScenarioError
from repro.synth import ScenarioSpec, TraceGenerator, small_scenario
from repro.synth.campaigns import CampaignSpec, NoiseSpec, TierSpec
from repro.synth.scenarios import (
    bagle_like,
    data2011day,
    data2012week,
    generic_cnc,
    single_client_campaign,
    zeus_like,
)


class TestSpecValidation:
    def test_tier_requires_files(self):
        with pytest.raises(ScenarioError):
            TierSpec(role="x", num_servers=2)

    def test_tier_bad_contact_fraction(self):
        with pytest.raises(ScenarioError):
            TierSpec(role="x", num_servers=1, uri_files=("a.php",),
                     contact_fraction=0.0)

    def test_campaign_unknown_category(self):
        with pytest.raises(ScenarioError):
            CampaignSpec(
                name="x",
                category="nonsense",
                num_clients=1,
                tiers=(TierSpec(role="t", num_servers=1, uri_files=("a.php",)),),
            )

    def test_ids2013_must_extend_2012(self):
        with pytest.raises(ScenarioError):
            CampaignSpec(
                name="x",
                category="cnc",
                num_clients=1,
                tiers=(TierSpec(role="t", num_servers=1, uri_files=("a.php",)),),
                ids2012_fraction=0.5,
                ids2013_fraction=0.2,
            )

    def test_scenario_client_overcommit(self):
        spec = ScenarioSpec(
            name="x",
            seed=1,
            num_clients=3,
            num_popular_sites=1,
            num_medium_sites=1,
            num_longtail_sites=1,
            sites_per_client_mean=2.0,
            campaigns=(generic_cnc("a", num_clients=3, num_servers=2),),
        )
        with pytest.raises(ScenarioError):
            spec.validate()

    def test_duplicate_campaign_names(self):
        spec = ScenarioSpec(
            name="x",
            seed=1,
            num_clients=50,
            num_popular_sites=1,
            num_medium_sites=1,
            num_longtail_sites=1,
            sites_per_client_mean=2.0,
            campaigns=(generic_cnc("a", 1, 2), generic_cnc("a", 1, 2)),
        )
        with pytest.raises(ScenarioError):
            spec.validate()

    def test_campaign_active_day_out_of_range(self):
        spec = ScenarioSpec(
            name="x",
            seed=1,
            num_clients=50,
            num_popular_sites=1,
            num_medium_sites=1,
            num_longtail_sites=1,
            sites_per_client_mean=2.0,
            campaigns=(generic_cnc("a", 1, 2, active_days=(3,)),),
            days=2,
        )
        with pytest.raises(ScenarioError):
            spec.validate()

    def test_activity_classification(self):
        assert zeus_like().activity == "communication"
        from repro.synth.scenarios import iframe_injection
        assert iframe_injection().activity == "attacking"


class TestGeneratorDeterminism:
    def test_same_spec_same_dataset(self):
        a = TraceGenerator(small_scenario()).generate_day(0)
        b = TraceGenerator(small_scenario()).generate_day(0)
        assert a.trace == b.trace
        assert a.truth.malicious_servers == b.truth.malicious_servers
        assert a.liveness.dead_servers == b.liveness.dead_servers

    def test_different_seed_different_trace(self):
        a = TraceGenerator(small_scenario(seed=1)).generate_day(0)
        b = TraceGenerator(small_scenario(seed=2)).generate_day(0)
        assert a.trace != b.trace

    def test_day_out_of_range(self):
        generator = TraceGenerator(small_scenario())
        with pytest.raises(ScenarioError):
            generator.generate_day(1)


class TestGeneratedDataset:
    def test_campaign_clients_disjoint(self, small_dataset):
        seen = set()
        for campaign in small_dataset.truth.campaigns:
            assert not (campaign.clients & seen)
            seen |= campaign.clients

    def test_campaign_servers_in_trace(self, small_dataset):
        from repro.domains.names import normalize_server_name
        trace_servers = {
            normalize_server_name(h) for h in small_dataset.trace.servers
        }
        for campaign in small_dataset.truth.campaigns:
            assert campaign.servers <= trace_servers

    def test_whois_covers_campaign_domains(self, small_dataset):
        from repro.domains.names import is_ip_address
        for campaign in small_dataset.truth.campaigns:
            for server in campaign.servers:
                if not is_ip_address(server):
                    assert small_dataset.whois.lookup(server) is not None

    def test_ids2013_extends_ids2012(self, small_dataset):
        s2012 = small_dataset.ids2012.detected_servers(small_dataset.trace)
        s2013 = small_dataset.ids2013.detected_servers(small_dataset.trace)
        assert s2012 <= s2013

    def test_truth_accessors(self, small_dataset):
        truth = small_dataset.truth
        campaign = truth.campaigns[0]
        server = sorted(campaign.servers)[0]
        assert truth.campaign_of(server) is campaign
        assert truth.campaign_of("definitely-not-planted.example") is None
        assert truth.noise_servers <= truth.benign_servers


class TestWeekGeneration:
    @pytest.fixture(scope="class")
    def week(self):
        spec = small_scenario(seed=5, days=3)
        return TraceGenerator(spec).generate_week()

    def test_number_of_days(self, week):
        assert len(week) == 3

    def test_persistent_campaign_keeps_servers(self, week):
        # small_scenario campaigns are not agile: same servers daily.
        for name in ("small-zeus", "small-cnc"):
            per_day = [
                next(c.servers for c in day.truth.campaigns if c.name == name)
                for day in week
            ]
            assert per_day[0] == per_day[1] == per_day[2]

    def test_timestamps_in_day_window(self, week):
        # A visit that starts just before midnight may spill its later
        # fetches a few seconds past the boundary; allow that slop.
        for day_index, day in enumerate(week):
            low, high = day.trace.time_window()
            assert low >= day_index * 86400.0
            assert high < (day_index + 1) * 86400.0 + 60.0


class TestAgileCampaigns:
    def test_agile_rotates_servers(self):
        campaign = generic_cnc(
            "agile",
            num_clients=2,
            num_servers=4,
            agile=True,
            active_days=(0, 1),
        )
        spec = ScenarioSpec(
            name="agile-test",
            seed=3,
            num_clients=60,
            num_popular_sites=2,
            num_medium_sites=10,
            num_longtail_sites=30,
            sites_per_client_mean=3.0,
            campaigns=(campaign,),
            days=2,
        )
        week = TraceGenerator(spec).generate_week()
        day0 = next(c for c in week[0].truth.campaigns if c.name == "agile")
        day1 = next(c for c in week[1].truth.campaigns if c.name == "agile")
        assert day0.servers != day1.servers
        assert day0.clients == day1.clients  # same infected clients


class TestPresets:
    def test_presets_validate(self):
        data2011day().validate()
        data2012week().validate()

    def test_scaled_preset(self):
        spec = data2011day(scale=0.1)
        spec.validate()
        assert spec.num_clients < data2011day().num_clients

    def test_bagle_two_tiers(self):
        spec = bagle_like()
        assert {tier.role for tier in spec.tiers} == {"download", "cnc"}
        assert spec.total_servers == 14 + 18

    def test_single_client_campaign(self):
        assert single_client_campaign("x").num_clients == 1

    def test_noise_spec_negative_rejected(self):
        with pytest.raises(ScenarioError):
            NoiseSpec(torrent_clients=-1)


class TestConfickerFactory:
    def test_spec_shape(self):
        from repro.synth.scenarios import conficker_like
        spec = conficker_like()
        assert spec.category == "cnc"
        assert spec.tiers[0].share_whois
        assert spec.tiers[0].dga_domains

    def test_detected_end_to_end(self):
        from repro.core.pipeline import SmashPipeline
        from repro.synth import ScenarioSpec, TraceGenerator
        from repro.synth.scenarios import conficker_like

        spec = ScenarioSpec(
            name="conficker-demo",
            seed=13,
            num_clients=120,
            num_popular_sites=4,
            num_medium_sites=30,
            num_longtail_sites=400,
            sites_per_client_mean=5.0,
            campaigns=(conficker_like(num_clients=3, domains=12),),
        )
        dataset = TraceGenerator(spec).generate_day(0)
        result = SmashPipeline().run(
            dataset.trace, whois=dataset.whois, redirects=dataset.redirects
        )
        planted = dataset.truth.campaigns[0]
        found = planted.servers & result.detected_servers
        # The herd coheres on client + URI file + Whois (no IP fluxing).
        assert len(found) >= len(planted.servers) * 0.7
