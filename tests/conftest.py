"""Shared fixtures.

The expensive artefacts (small synthetic dataset, its pipeline result)
are session-scoped: many integration tests read them, none mutates them.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import SmashPipeline
from repro.synth import TraceGenerator, small_scenario


@pytest.fixture(scope="session")
def small_dataset():
    """One day of the small scenario (deterministic, seed 7)."""
    return TraceGenerator(small_scenario()).generate_day(0)


@pytest.fixture(scope="session")
def small_mined(small_dataset):
    """Mined dimensions for the small dataset (threshold-independent)."""
    return SmashPipeline().mine(small_dataset.trace, whois=small_dataset.whois)


@pytest.fixture(scope="session")
def small_result(small_dataset, small_mined):
    """Full SMASH result at the paper's default threshold (0.8)."""
    return SmashPipeline().finish(small_mined, redirects=small_dataset.redirects)


@pytest.fixture(scope="session")
def small_result_single(small_dataset, small_mined):
    """SMASH result at the single-client threshold (1.0)."""
    return SmashPipeline().finish(
        small_mined, redirects=small_dataset.redirects, thresh=1.0
    )
