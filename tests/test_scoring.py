"""Alert-scoring subsystem tests: evidence providers, risk scorer,
severity policy, engine/checkpoint integration, sink hardening, and the
synthetic-ground-truth alert-quality experiment."""

import json

import pytest

from repro.errors import StreamError
from repro.eval.alerts import alert_quality
from repro.groundtruth.blacklist import BlacklistAggregator
from repro.groundtruth.ids import SignatureIds
from repro.groundtruth.labels import Signature, ThreatLabel
from repro.httplog.records import HttpRequest
from repro.httplog.trace import HttpTrace
from repro.stream import (
    AlertPolicy,
    BlacklistEvidence,
    CampaignScorer,
    ConsoleSink,
    IdsEvidence,
    JsonlSink,
    ListSink,
    ScorerConfig,
    StaticEvidence,
    StreamingSmash,
    TrackedCampaign,
    TrackEvent,
    load_checkpoint,
    save_checkpoint,
    scenario_evidence,
    severity_at_least,
)
from repro.synth import TraceGenerator, small_scenario


def request(client, host, uri="/x.html", user_agent="UA/1"):
    return HttpRequest(
        timestamp=0.0,
        client=client,
        host=host,
        server_ip="1.1.1.1",
        uri=uri,
        user_agent=user_agent,
    )


def tracked(
    uid="C0001",
    days_seen=(0,),
    servers=("s1.com",),
    clients=("c1",),
    all_servers=None,
    servers_added=0,
    servers_removed=0,
    serial=1,
):
    return TrackedCampaign(
        uid=uid,
        first_seen=days_seen[0],
        last_seen=days_seen[-1],
        days_seen=tuple(days_seen),
        servers=frozenset(servers),
        clients=frozenset(clients),
        all_servers=frozenset(all_servers if all_servers is not None else servers),
        servers_added=servers_added,
        servers_removed=servers_removed,
        serial=serial,
    )


def event(kind="new_campaign", day=0, uid="C0001", **detail):
    return TrackEvent(kind=kind, day=day, uid=uid, detail=detail)


class TestEvidenceSources:
    def test_static_evidence(self):
        source = StaticEvidence("feed", ["bad.com", "worse.com"], kind="custom")
        assert source.matched() == {"bad.com", "worse.com"}
        assert source.hits_among(["bad.com", "good.com"]) == {"bad.com"}

    def test_ids_evidence_accumulates_across_days(self):
        label = ThreatLabel(threat_id="T1", category="cnc")
        ids = SignatureIds("ids2012", [Signature(label=label, server="bad.com")])
        source = IdsEvidence(ids)
        assert source.name == "ids2012" and source.kind == "ids"
        source.observe_day(0, HttpTrace([request("c1", "bad.com")]))
        source.observe_day(1, HttpTrace([request("c1", "clean.com")]))
        assert source.matched() == {"bad.com"}

    def test_zero_day_excludes_older_generation(self):
        label = ThreatLabel(threat_id="T1", category="cnc")
        ids2012 = IdsEvidence(SignatureIds("ids2012", [Signature(label=label, server="old.com")]))
        ids2013 = IdsEvidence(
            SignatureIds(
                "ids2013",
                [
                    Signature(label=label, server="old.com"),
                    Signature(label=label, server="fresh.com"),
                ],
            ),
            name="ids2013_zero_day",
            exclude=ids2012,
        )
        assert ids2013.kind == "zero_day"
        trace = HttpTrace([request("c1", "old.com"), request("c2", "fresh.com")])
        ids2012.observe_day(0, trace)
        ids2013.observe_day(0, trace)
        assert ids2013.matched() == {"fresh.com"}

    def test_blacklist_evidence_checks_observed_servers(self):
        aggregator = BlacklistAggregator.from_mapping({"mdl": ["listed.com"]})
        source = BlacklistEvidence(aggregator)
        source.observe_day(0, HttpTrace([request("c1", "listed.com"), request("c1", "ok.com")]))
        assert source.matched() == {"listed.com"}

    def test_state_round_trip(self):
        label = ThreatLabel(threat_id="T1", category="cnc")
        source = IdsEvidence(SignatureIds("ids2012", [Signature(label=label, server="bad.com")]))
        source.observe_day(0, HttpTrace([request("c1", "bad.com")]))
        restored = IdsEvidence(name="ids2012")
        restored.load_state(json.loads(json.dumps(source.state_dict())))
        assert restored.matched() == source.matched()

    def test_ids_evidence_needs_ids_or_name(self):
        with pytest.raises(StreamError):
            IdsEvidence()

    def test_scenario_trio_binds_datasets(self, small_dataset):
        trio = scenario_evidence()
        assert [source.name for source in trio] == [
            "ids2012",
            "ids2013_zero_day",
            "blacklist",
        ]
        for source in trio:
            source.bind_dataset(small_dataset)
            source.observe_day(0, small_dataset.trace)
        # The small scenario plants a Zeus-like herd known only to the
        # 2013 signatures, so zero-day evidence must be non-empty.
        assert trio[1].matched()
        assert trio[1].matched().isdisjoint(trio[0].matched())


class TestCampaignScorer:
    def test_features_rates_are_per_advance(self):
        campaign = tracked(
            days_seen=(0, 1, 2),
            servers=("a", "b"),
            all_servers=("a", "b", "c", "d"),
            servers_added=4,
            servers_removed=2,
        )
        features = CampaignScorer().features(campaign)
        assert features.growth_rate == 2.0
        assert features.churn_rate == 3.0
        assert features.lifetime_days == 3

    def test_evidence_counted_against_all_time_servers(self):
        campaign = tracked(servers=("now.com",), all_servers=("now.com", "was.com"))
        source = StaticEvidence("blacklist", ["was.com"], kind="blacklist")
        features = CampaignScorer().features(campaign, [source])
        assert features.evidence == {"blacklist": 1}
        assert features.evidence_by_kind == {"blacklist": 1}

    def test_score_monotone_in_growth(self):
        scorer = CampaignScorer()
        slow = scorer.score(scorer.features(tracked(days_seen=(0, 1), servers_added=1)))
        fast = scorer.score(scorer.features(tracked(days_seen=(0, 1), servers_added=9)))
        assert fast > slow

    def test_evidence_bonuses_raise_score(self):
        scorer = CampaignScorer()
        campaign = tracked(servers=("bad.com",))
        bare = scorer.score(scorer.features(campaign))
        confirmed = scorer.score(
            scorer.features(campaign, [StaticEvidence("zd", ["bad.com"], kind="zero_day")])
        )
        assert confirmed >= bare + scorer.config.zero_day_bonus

    def test_score_independent_of_source_order(self):
        scorer = CampaignScorer()
        campaign = tracked(servers=("a", "b", "c"))
        sources = [
            StaticEvidence("s1", ["a"], kind="ids"),
            StaticEvidence("s2", ["b"], kind="blacklist"),
            StaticEvidence("s3", ["c"], kind="custom"),
        ]
        forward = scorer.score(scorer.features(campaign, sources))
        backward = scorer.score(scorer.features(campaign, sources[::-1]))
        assert forward == backward

    def test_config_validation(self):
        with pytest.raises(StreamError):
            ScorerConfig(growth_scale=0.0).validate()
        with pytest.raises(StreamError):
            ScorerConfig(evidence_weight=-1.0).validate()


class TestAlertPolicy:
    def test_zero_day_evidence_is_critical(self):
        policy = AlertPolicy()
        scorer = CampaignScorer()
        campaign = tracked(servers=("bad.com",))
        features, score = scorer.assess(
            campaign, [StaticEvidence("zd", ["bad.com"], kind="zero_day")]
        )
        assert policy.severity(event(), features, score) == "critical"

    def test_blacklist_evidence_is_critical(self):
        policy = AlertPolicy()
        scorer = CampaignScorer()
        features, score = scorer.assess(
            tracked(servers=("bad.com",)),
            [StaticEvidence("bl", ["bad.com"], kind="blacklist")],
        )
        assert policy.severity(event(), features, score) == "critical"

    def test_plain_ids_evidence_is_warning(self):
        policy = AlertPolicy()
        scorer = CampaignScorer()
        features, score = scorer.assess(
            tracked(servers=("bad.com",)),
            [StaticEvidence("ids", ["bad.com"], kind="ids")],
        )
        assert policy.severity(event(), features, score) == "warning"

    def test_fast_growth_is_warning(self):
        policy = AlertPolicy(growth_rate=3.0)
        scorer = CampaignScorer()
        campaign = tracked(days_seen=(0, 1), servers_added=4)
        features, score = scorer.assess(campaign)
        assert policy.severity(event(kind="campaign_growth"), features, score) == "warning"
        # The same growth on a non-growth event does not trip the rule.
        slow = tracked(days_seen=(0, 1), servers_added=0)
        features, score = scorer.assess(slow)
        assert policy.severity(event(kind="campaign_died"), features, score) == "info"

    def test_quiet_campaign_is_info(self):
        policy = AlertPolicy()
        scorer = CampaignScorer()
        features, score = scorer.assess(tracked())
        assert policy.severity(event(), features, score) == "info"

    def test_min_severity_gate(self):
        assert AlertPolicy(min_severity="warning").passes("critical")
        assert not AlertPolicy(min_severity="warning").passes("info")
        assert severity_at_least("critical", "info")
        with pytest.raises(StreamError):
            severity_at_least("bogus", "info")

    def test_validation(self):
        with pytest.raises(StreamError):
            AlertPolicy(min_severity="loud").validate()
        with pytest.raises(StreamError):
            AlertPolicy(warning_score=2.0, critical_score=1.0).validate()

    def test_dict_round_trip(self):
        policy = AlertPolicy(min_severity="warning", growth_rate=5.0, critical_score=9.0)
        assert AlertPolicy.from_dict(json.loads(json.dumps(policy.to_dict()))) == policy


@pytest.fixture(scope="module")
def scoring_days():
    """Three days of the small scenario (includes a zero-day Zeus herd)."""
    return list(TraceGenerator(small_scenario(seed=3, days=3)).iter_days())


@pytest.fixture(scope="module")
def scored_stream(scoring_days):
    """A full scored streaming run at min_severity=warning."""
    sink = ListSink()
    engine = StreamingSmash(
        sinks=(sink,),
        evidence=scenario_evidence(),
        policy=AlertPolicy(min_severity="warning"),
    )
    updates = engine.run_datasets(scoring_days)
    return engine, updates, sink


class TestEngineScoring:
    def test_every_event_scored(self, scored_stream):
        _, updates, _ = scored_stream
        events = [event for update in updates for event in update.events]
        assert events
        assert all(event.severity is not None for event in events)
        assert all(isinstance(event.score, float) for event in events)

    def test_sinks_receive_only_passing_events(self, scored_stream):
        engine, updates, sink = scored_stream
        alerts = [event for update in updates for event in update.alerts]
        assert sink.events == alerts
        assert all(severity_at_least(event.severity, "warning") for event in alerts)
        suppressed = [
            event
            for update in updates
            for event in update.events
            if not severity_at_least(event.severity, "warning")
        ]
        assert suppressed, "expected some info-level noise to be suppressed"

    def test_zero_day_campaign_goes_critical(self, scored_stream):
        engine, updates, _ = scored_stream
        zero_day = engine.evidence[1]
        assert zero_day.name == "ids2013_zero_day" and zero_day.matched()
        critical = [
            event
            for update in updates
            for event in update.events
            if event.severity == "critical"
        ]
        assert critical
        confirmed_uids = {
            campaign.uid
            for campaign in engine.tracker.campaigns
            if campaign.all_servers & zero_day.matched()
        }
        assert confirmed_uids & {event.uid for event in critical}

    def test_raising_min_severity_strictly_reduces_volume(self, scored_stream):
        _, updates, _ = scored_stream
        events = [event for update in updates for event in update.events]
        volumes = [
            sum(1 for event in events if severity_at_least(event.severity, level))
            for level in ("info", "warning", "critical")
        ]
        assert volumes[0] > volumes[2], "critical floor must strictly reduce volume"
        assert volumes[0] >= volumes[1] >= volumes[2]

    def test_checkpoint_resume_scores_identically(self, scoring_days, tmp_path):
        full_engine = StreamingSmash(evidence=scenario_evidence())
        full_updates = full_engine.run_datasets(scoring_days)

        split = StreamingSmash(evidence=scenario_evidence())
        split.run_datasets(scoring_days[:2])
        path = tmp_path / "scored.ckpt"
        save_checkpoint(split, path)

        resumed = load_checkpoint(path, evidence=scenario_evidence())
        resumed_updates = resumed.run_datasets(scoring_days[2:])
        assert resumed.tracker.to_dict() == full_engine.tracker.to_dict()
        assert [source.matched() for source in resumed.evidence] == [
            source.matched() for source in full_engine.evidence
        ]
        assert [event.to_dict() for update in resumed_updates for event in update.events] == [
            event.to_dict() for update in full_updates[2:] for event in update.events
        ]

    def test_policy_restored_from_checkpoint(self, tmp_path):
        engine = StreamingSmash(policy=AlertPolicy(min_severity="critical", growth_rate=7.0))
        path = tmp_path / "policy.ckpt"
        save_checkpoint(engine, path)
        assert load_checkpoint(path).policy == engine.policy
        override = AlertPolicy(min_severity="warning")
        assert load_checkpoint(path, policy=override).policy == override

    def test_duplicate_evidence_names_rejected(self):
        with pytest.raises(StreamError):
            StreamingSmash(
                evidence=(
                    StaticEvidence("feed", ["a.com"]),
                    StaticEvidence("feed", ["b.com"]),
                )
            )


class TestAlertQuality:
    def test_report_against_planted_truth(self, scored_stream, scoring_days):
        engine, updates, _ = scored_stream
        report = alert_quality(engine, updates, [d.truth for d in scoring_days])
        assert set(report) == {"info", "warning", "critical"}
        info = report["info"]
        assert info["alerts"] >= report["warning"]["alerts"] >= report["critical"]["alerts"]
        # Every severity tier of the small scenario is dominated by the
        # planted campaigns, so precision stays high; recall is capped
        # below 1.0 only by the scenario's intentionally undetectable
        # campaign (the Section V-A2 false negative, recovered solely by
        # the opt-in urlparam dimension) and shrinks (or holds) as the
        # floor rises.
        assert info["precision"] is not None and info["precision"] > 0.5
        assert info["recall"] == 0.8
        assert report["critical"]["recall"] <= info["recall"]

    def test_empty_feed_yields_none_metrics(self):
        engine = StreamingSmash()
        report = alert_quality(engine, [], [])
        for row in report.values():
            assert row["alerts"] == 0
            assert row["precision"] is None
            assert row["recall"] is None


class TestSinkHardening:
    def test_console_sink_close_flushes_caller_stream(self, tmp_path):
        path = tmp_path / "console.log"
        handle = path.open("w", buffering=1024 * 1024)
        sink = ConsoleSink(stream=handle)
        sink.emit(event())
        assert path.read_text() == ""  # still buffered
        sink.close()
        assert "new_campaign" in path.read_text()
        handle.close()
        sink.close()  # closed caller stream is tolerated

    def test_console_sink_renders_severity_and_score(self):
        import io

        buffer = io.StringIO()
        sink = ConsoleSink(stream=buffer)
        sink.emit(
            TrackEvent(
                kind="new_campaign",
                day=2,
                uid="C0009",
                detail={"servers": 4},
                severity="critical",
                score=2.5,
            )
        )
        line = buffer.getvalue()
        assert "CRITICAL" in line and "score=2.5" in line

    def test_jsonl_sink_skips_replayed_days_on_resume(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        first = JsonlSink(path)
        first.emit(event(day=0, uid="C0001"))
        first.emit(event(day=1, uid="C0002"))
        first.close()

        reopened = JsonlSink(path, resume_safe=True)
        reopened.emit(event(day=1, uid="C0002"))  # replayed -> dropped
        reopened.emit(event(day=2, uid="C0003"))  # new -> appended
        reopened.close()
        days = [json.loads(line)["day"] for line in path.read_text().splitlines()]
        assert days == [0, 1, 2]

    def test_jsonl_sink_appends_plainly_by_default(self, tmp_path):
        """A fresh (non-resumed) stream pointed at an existing file must
        never swallow its own events — dedupe is opt-in via --resume."""
        path = tmp_path / "alerts.jsonl"
        for _ in range(2):
            sink = JsonlSink(path)
            sink.emit(event(day=0))
            sink.close()
        assert len(path.read_text().splitlines()) == 2

    def test_jsonl_sink_completes_partially_flushed_boundary_day(self, tmp_path):
        """A crash mid-day leaves the day's first events in the file; the
        replay must append exactly the missing tail — no duplicates, no
        lost alerts."""
        path = tmp_path / "alerts.jsonl"
        first = JsonlSink(path)
        first.emit(event(day=0, uid="C0001"))
        first.emit(event(day=1, uid="C0002"))  # day 1 partially flushed
        first.close()

        replayed = JsonlSink(path, resume_safe=True)
        replayed.emit(event(day=0, uid="C0001"))  # earlier day -> dropped
        replayed.emit(event(day=1, uid="C0002"))  # already present -> dropped
        replayed.emit(event(day=1, uid="C0003"))  # the lost tail -> appended
        replayed.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [(line["day"], line["uid"]) for line in lines] == [
            (0, "C0001"),
            (1, "C0002"),
            (1, "C0003"),
        ]

    def test_jsonl_sink_tolerates_torn_trailing_line(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        sink = JsonlSink(path)
        sink.emit(event(day=3, uid="C0001"))
        sink.close()
        # Simulate a crash mid-write: a torn, unparseable trailing line.
        with path.open("a") as handle:
            handle.write('{"day": 4, "ki')
        reopened = JsonlSink(path, resume_safe=True)
        reopened.emit(event(day=3, uid="C0001"))  # replayed -> dropped
        reopened.emit(event(day=4, uid="C0002"))
        reopened.close()
        complete = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.endswith("}")
        ]
        assert [line["uid"] for line in complete] == ["C0001", "C0002"]

    def test_receive_all_sink_bypasses_severity_floor(self, scoring_days):
        filtered = ListSink()
        audit = ListSink()
        audit.receive_all = True
        engine = StreamingSmash(
            sinks=(filtered, audit),
            evidence=scenario_evidence(),
            policy=AlertPolicy(min_severity="warning"),
        )
        updates = engine.run_datasets(scoring_days[:1])
        assert audit.events == list(updates[0].events)
        assert filtered.events == list(updates[0].alerts)
        assert len(audit.events) > len(filtered.events)

    def test_cli_feed_files_are_name_normalized(self, tmp_path):
        from repro.cli import _blacklist_evidence, _ids_evidence

        ids_path = tmp_path / "ids.json"
        ids_path.write_text(
            json.dumps({"ids2012": ["www.old.com"], "ids2013": ["WWW.Old.COM", "cdn.fresh.net"]})
        )
        ids2012, zero_day = _ids_evidence(str(ids_path))
        assert ids2012.matched() == {"old.com"}
        assert zero_day.matched() == {"fresh.net"}

        blacklist_path = tmp_path / "bl.json"
        blacklist_path.write_text(json.dumps({"mdl": ["www.listed.org"]}))
        (blacklist,) = _blacklist_evidence(str(blacklist_path))
        assert blacklist.matched() == {"listed.org"}

    def test_engine_close_tolerates_failing_sink(self):
        class ExplodingSink(ListSink):
            def close(self):
                raise OSError("disk gone")

        survivor_closed = []

        class Survivor(ListSink):
            def close(self):
                survivor_closed.append(True)

        engine = StreamingSmash(sinks=(ExplodingSink(), Survivor()))
        with pytest.raises(OSError, match="disk gone"):
            engine.close()
        assert survivor_closed == [True]
