"""Unit tests for the interning substrate (PR 5).

Covers the :class:`~repro.core.interning.Interner`, the inverted-index
pair accumulator (including the config-gated heavy-hitter cap), and the
integer-indexed ``WeightedGraph`` backend features the interned core
relies on (canonical-index fast path, ``density_of``,
``add_sorted_edges``).
"""

from itertools import combinations

import pytest

from repro.config import DimensionConfig
from repro.core.interning import (
    Interner,
    PairStats,
    accumulate_pair_counts,
    pack_pair,
    unpack_pair,
)
from repro.errors import ConfigError
from repro.graph.louvain import louvain_communities
from repro.graph.wgraph import WeightedGraph, node_sort_key


class TestInterner:
    def test_ids_follow_canonical_order(self):
        labels = ["zeta.com", "alpha.com", "10.0.0.1", "mid.net"]
        interner = Interner(labels)
        decoded = [interner.label_of(i) for i in range(len(interner))]
        assert decoded == sorted(labels, key=node_sort_key)
        for index, label in enumerate(decoded):
            assert interner.id_of(label) == index

    def test_duplicates_collapse(self):
        interner = Interner(["a", "b", "a", "b"])
        assert len(interner) == 2

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            Interner(["a"]).id_of("missing")

    def test_intern_appends_after_base(self):
        interner = Interner(["b", "c"])
        assert interner.base_size == 2
        appended = interner.intern("a")  # sorts before the base namespace
        assert appended == 2  # ...but gets the next dense id
        assert interner.intern("a") == appended  # idempotent
        assert interner.label_of(appended) == "a"
        assert len(interner) == 3
        assert interner.base_size == 2

    def test_encode_decode_roundtrip(self):
        interner = Interner(["s3", "s1", "s2"])
        ids = interner.encode_set(["s1", "s3"])
        assert interner.decode_set(ids) == frozenset({"s1", "s3"})
        assert interner.decode_sorted(ids) == ["s1", "s3"]
        assert interner.encode(["s2", "s1"]) == [
            interner.id_of("s2"),
            interner.id_of("s1"),
        ]

    def test_contains_and_labels(self):
        interner = Interner(["x"])
        assert "x" in interner
        assert "y" not in interner
        assert interner.labels == ("x",)


class TestPairAccumulator:
    def test_counts_match_bruteforce(self):
        groups = [[0, 2, 5], [2, 5], [1, 2], [3]]
        width = 6
        counts = accumulate_pair_counts(groups, width)
        expected: dict[tuple[int, int], int] = {}
        for group in groups:
            for a, b in combinations(group, 2):
                expected[(a, b)] = expected.get((a, b), 0) + 1
        assert {unpack_pair(k, width): v for k, v in counts.items()} == expected

    def test_pack_unpack_roundtrip(self):
        assert unpack_pair(pack_pair(3, 7, 10), 10) == (3, 7)

    def test_singletons_and_empty_groups_contribute_nothing(self):
        assert accumulate_pair_counts([[4], []], 5) == {}

    def test_stats_accounting(self):
        stats = PairStats()
        accumulate_pair_counts([[0, 1, 2], [3], [0, 1]], 4, stats=stats)
        assert stats.groups == 3
        assert stats.largest_group == 3
        assert stats.skipped_groups == 0
        assert stats.enumerated_pairs == 3 + 1
        assert stats.candidate_pairs == 3  # (0,1) (0,2) (1,2); (0,1) reinforced

    def test_heavy_hitter_group_is_capped_deterministically(self):
        # One shared artefact on 500 servers previously meant 124750
        # materialised candidate pairs; with the gate the group is
        # skipped outright and only the honest small groups are walked.
        heavy = list(range(500))
        small = [[0, 1], [2, 3]]
        stats = PairStats()
        counts = accumulate_pair_counts([heavy, *small], 500, cap=64, stats=stats)
        assert stats.skipped_groups == 1
        assert stats.enumerated_pairs == 2
        assert set(counts) == {pack_pair(0, 1, 500), pack_pair(2, 3, 500)}
        again = accumulate_pair_counts([heavy, *small], 500, cap=64)
        assert counts == again

    def test_cap_off_walks_heavy_group(self):
        heavy = list(range(100))
        stats = PairStats()
        counts = accumulate_pair_counts([heavy], 100, cap=0, stats=stats)
        assert stats.enumerated_pairs == 100 * 99 // 2
        assert len(counts) == 100 * 99 // 2

    def test_max_group_size_config_validates(self):
        DimensionConfig(max_group_size=10).validate()
        with pytest.raises(ConfigError):
            DimensionConfig(max_group_size=-1).validate()


class TestIndexedGraphBackend:
    def test_canonical_build_exposes_louvain_view(self):
        graph = WeightedGraph.from_sorted_labels(["a", "b", "c"])
        graph.add_edge_ids(0, 1, 1.0)
        graph.add_edge_ids(0, 2, 0.5)
        view = graph.louvain_view()
        assert view is not None
        labels, adjacency = view
        assert labels == ["a", "b", "c"]
        assert adjacency[0] == {1: 1.0, 2: 0.5}

    def test_out_of_order_nodes_disable_fast_path(self):
        graph = WeightedGraph()
        graph.add_node("b")
        graph.add_node("a")
        assert graph.louvain_view() is None

    def test_out_of_order_edges_disable_fast_path(self):
        graph = WeightedGraph.from_sorted_labels(["a", "b", "c"])
        graph.add_edge("b", "c", 1.0)
        graph.add_edge("a", "b", 1.0)  # inserts 0 into b's row after 2
        assert graph.louvain_view() is None

    def test_self_loops_and_zero_weights_disable_fast_path(self):
        looped = WeightedGraph.from_sorted_labels(["a", "b"])
        looped.add_edge("a", "a", 1.0)
        assert looped.louvain_view() is None
        zero = WeightedGraph.from_sorted_labels(["a", "b"])
        zero.add_edge("a", "b", 0.0)
        assert zero.louvain_view() is None

    def test_fast_path_matches_fallback(self):
        graph = WeightedGraph.from_sorted_labels(["a", "b", "c", "d", "w", "x"])
        for u, v, w in [
            ("a", "b", 1.0),
            ("a", "c", 1.0),
            ("b", "c", 1.0),
            ("c", "d", 0.05),
            ("w", "x", 2.0),
        ]:
            graph.add_edge(u, v, w)
        assert graph.louvain_view() is not None
        fast = louvain_communities(graph)
        slow = louvain_communities(graph, use_index=False)
        assert fast.communities == slow.communities
        assert fast.partition == slow.partition
        assert fast.modularity == slow.modularity

    def test_density_of_equals_subgraph_density(self):
        graph = WeightedGraph()
        for u, v in [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d"), ("e", "f")]:
            graph.add_edge(u, v, 1.0)
        for members in (["a", "b", "c"], ["a", "d"], ["a", "b", "c", "d", "zz"], ["e"], []):
            assert graph.density_of(members) == graph.subgraph(members).density()

    def test_add_sorted_edges_matches_incremental_adds(self):
        edges = [(0, 1, 0.5), (0, 3, 1.5), (1, 2, 1.0), (2, 3, 0.25)]
        bulk = WeightedGraph.from_sorted_labels(["a", "b", "c", "d"])
        bulk.add_sorted_edges(iter(edges))
        single = WeightedGraph.from_sorted_labels(["a", "b", "c", "d"])
        for iu, iv, w in edges:
            single.add_edge_ids(iu, iv, w)
        assert bulk == single
        assert bulk.total_weight == single.total_weight
        assert bulk.louvain_view() is not None
        assert bulk.louvain_view()[1] == single.louvain_view()[1]

    def test_ids_and_labels_roundtrip(self):
        graph = WeightedGraph.from_sorted_labels(["a", "b"])
        assert graph.id_of("b") == 1
        assert graph.label_of(0) == "a"

    def test_build_stats_default_empty(self):
        assert WeightedGraph().build_stats == {}
