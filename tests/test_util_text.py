"""Unit tests for repro.util.text (charset cosine, set overlap scores)."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.text import charset_cosine, charset_vector, jaccard, overlap_ratio_product


class TestCharsetVector:
    def test_counts_characters(self):
        assert charset_vector("aab") == {"a": 2, "b": 1}

    def test_empty_string(self):
        assert charset_vector("") == {}

    def test_case_sensitive(self):
        assert charset_vector("aA") == {"a": 1, "A": 1}


class TestCharsetCosine:
    def test_identical_strings(self):
        assert charset_cosine("abcdef", "abcdef") == 1.0

    def test_anagrams_score_one(self):
        assert charset_cosine("listen", "silent") == pytest.approx(1.0)

    def test_disjoint_alphabets(self):
        assert charset_cosine("aaa", "bbb") == 0.0

    def test_both_empty(self):
        assert charset_cosine("", "") == 1.0

    def test_one_empty(self):
        assert charset_cosine("abc", "") == 0.0
        assert charset_cosine("", "abc") == 0.0

    def test_partial_overlap_value(self):
        # "ab" vs "ac": vectors (1,1,0) and (1,0,1) -> cos = 1/2.
        assert charset_cosine("ab", "ac") == pytest.approx(0.5)

    def test_symmetry(self):
        assert charset_cosine("hello", "world") == charset_cosine("world", "hello")

    @given(st.text(max_size=50), st.text(max_size=50))
    def test_bounds(self, a, b):
        value = charset_cosine(a, b)
        assert 0.0 <= value <= 1.0

    @given(st.text(min_size=1, max_size=50))
    def test_self_similarity_is_one(self, s):
        assert charset_cosine(s, s) == pytest.approx(1.0)

    @given(st.text(min_size=1, max_size=30))
    def test_shuffle_invariance(self, s):
        assert charset_cosine(s, s[::-1]) == pytest.approx(1.0)


class TestJaccard:
    def test_identical(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert jaccard({1}, {2}) == 0.0

    def test_both_empty(self):
        assert jaccard(set(), set()) == 1.0

    def test_half(self):
        assert jaccard({1, 2}, {2, 3}) == pytest.approx(1 / 3)


class TestOverlapRatioProduct:
    def test_identical_sets(self):
        assert overlap_ratio_product({1, 2, 3}, {1, 2, 3}) == 1.0

    def test_disjoint(self):
        assert overlap_ratio_product({1}, {2}) == 0.0

    def test_empty_either(self):
        assert overlap_ratio_product(set(), {1}) == 0.0
        assert overlap_ratio_product({1}, set()) == 0.0

    def test_paper_equation_value(self):
        # |A∩B|=1, |A|=2, |B|=4 -> (1/2)(1/4) = 0.125.
        assert overlap_ratio_product({1, 2}, {2, 3, 4, 5}) == pytest.approx(0.125)

    def test_subset_asymmetric_sizes(self):
        # A ⊂ B: (|A|/|A|)(|A|/|B|) = |A|/|B|.
        assert overlap_ratio_product({1, 2}, {1, 2, 3, 4}) == pytest.approx(0.5)

    @given(
        st.frozensets(st.integers(0, 30), max_size=15),
        st.frozensets(st.integers(0, 30), max_size=15),
    )
    def test_bounds_and_symmetry(self, a, b):
        value = overlap_ratio_product(a, b)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(overlap_ratio_product(b, a))

    @given(st.frozensets(st.integers(0, 30), min_size=1, max_size=15))
    def test_self_is_one(self, a):
        assert overlap_ratio_product(a, a) == pytest.approx(1.0)

    @given(
        st.frozensets(st.integers(0, 20), min_size=1, max_size=10),
        st.frozensets(st.integers(0, 20), min_size=1, max_size=10),
    )
    def test_never_exceeds_jaccard_squared_relation(self, a, b):
        # overlap product <= min ratio <= jaccard is not generally true;
        # but product <= each individual ratio <= 1 is.
        inter = len(a & b)
        if inter:
            assert overlap_ratio_product(a, b) <= inter / len(a) + 1e-12
            assert overlap_ratio_product(a, b) <= inter / len(b) + 1e-12
