"""Unit tests for synthetic name generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.namegen import (
    benign_domain,
    benign_filename,
    dga_domain,
    ipv4,
    obfuscated_filename_family,
    pseudo_word,
)
from repro.util.rng import make_rng
from repro.util.text import charset_cosine


class TestPseudoWord:
    def test_nonempty_lowercase(self):
        rng = make_rng(1)
        for _ in range(20):
            word = pseudo_word(rng)
            assert word and word == word.lower()


class TestBenignDomain:
    def test_suffix(self):
        rng = make_rng(2)
        assert benign_domain(rng, suffix="co.uk").endswith(".co.uk")

    def test_registrable(self):
        from repro.domains.names import second_level_domain
        rng = make_rng(3)
        for _ in range(20):
            domain = benign_domain(rng, suffix="com")
            assert second_level_domain(domain) == domain


class TestDgaDomain:
    def test_template_digits(self):
        rng = make_rng(4)
        domain = dga_domain(rng, suffix="cz.cc", template="4k0t1NNm")
        label = domain.split(".")[0]
        assert len(label) == 8
        assert label.startswith("4k0t1") and label.endswith("m")
        assert label[5:7].isdigit()

    def test_template_family_shares_shape(self):
        rng = make_rng(5)
        labels = {dga_domain(rng, template="4k0t1NNm").split(".")[0] for _ in range(30)}
        assert all(l.startswith("4k0t1") for l in labels)
        assert len(labels) > 5  # actually varies

    def test_random_label_length(self):
        rng = make_rng(6)
        for _ in range(10):
            label = dga_domain(rng).split(".")[0]
            assert 8 <= len(label) <= 12
            assert not label[0].isdigit()


class TestObfuscatedFamily:
    def test_pairwise_cosine_above_threshold(self):
        # The family must trip the paper's eq.-4 test (cos > 0.8).
        rng = make_rng(7)
        family = obfuscated_filename_family(rng, count=6, length=40)
        stems = [name.rsplit(".", 1)[0] for name in family]
        for i, a in enumerate(stems):
            for b in stems[i + 1:]:
                assert charset_cosine(a, b) > 0.8

    def test_names_are_long_and_distinct(self):
        rng = make_rng(8)
        family = obfuscated_filename_family(rng, count=5, length=40)
        assert len(set(family)) == 5
        assert all(len(name) > 25 for name in family)

    def test_extension(self):
        rng = make_rng(9)
        assert all(
            name.endswith(".php")
            for name in obfuscated_filename_family(rng, count=3)
        )

    def test_validation(self):
        rng = make_rng(10)
        with pytest.raises(ValueError):
            obfuscated_filename_family(rng, count=0)
        with pytest.raises(ValueError):
            obfuscated_filename_family(rng, count=2, length=4)


class TestBenignFilename:
    def test_high_entropy_no_easy_collisions(self):
        rng = make_rng(11)
        names = {benign_filename(rng) for _ in range(2000)}
        # Essentially unique (the URI-file dimension relies on benign
        # names not colliding across servers).
        assert len(names) > 1950

    @settings(max_examples=10)
    @given(st.integers(0, 10**6))
    def test_short_names(self, seed):
        # Benign slugs stay under the paper's len=25 obfuscation cutoff
        # most of the time (they are compared by exact match).
        rng = make_rng(seed)
        assert len(benign_filename(rng)) < 30


class TestIpv4:
    def test_format(self):
        rng = make_rng(12)
        for _ in range(20):
            parts = ipv4(rng).split(".")
            assert len(parts) == 4
            assert all(0 <= int(p) <= 255 for p in parts)
