"""Unit tests for the four similarity dimensions (Section III-B)."""

import pytest

from repro.config import DimensionConfig
from repro.core.dimensions.client import build_client_graph, client_similarity
from repro.core.dimensions.ipset import build_ipset_graph
from repro.core.dimensions.urifile import (
    build_urifile_graph,
    file_similarity,
    filename_similarity,
)
from repro.core.dimensions.whoisdim import (
    build_whois_graph,
    comparable_fields,
    whois_similarity,
)
from repro.httplog.records import HttpRequest
from repro.httplog.trace import HttpTrace
from repro.whois.record import WhoisRecord
from repro.whois.registry import WhoisRegistry


def request(client, host, uri="/x.html", ip="1.1.1.1"):
    return HttpRequest(
        timestamp=0.0,
        client=client,
        host=host,
        server_ip=ip,
        uri=uri,
    )


# Tiny test universes: disable the floors and the ubiquity filter (with
# two servers, any shared file is "ubiquitous" by fraction).
LOOSE = DimensionConfig(
    min_edge_weight=1e-9,
    client_min_edge_weight=1e-9,
    max_file_server_fraction=1.0,
)


class TestClientSimilarity:
    def test_equation_one(self):
        # |C1∩C2|=2, |C1|=2, |C2|=4 -> (2/2)(2/4) = 0.5.
        assert client_similarity(
            frozenset({"a", "b"}), frozenset({"a", "b", "c", "d"})
        ) == pytest.approx(0.5)

    def test_identical_sets(self):
        assert client_similarity(frozenset({"a"}), frozenset({"a"})) == 1.0

    def test_disjoint(self):
        assert client_similarity(frozenset({"a"}), frozenset({"b"})) == 0.0

    def test_graph_edges(self):
        trace = HttpTrace([
            request("c1", "s1.com"),
            request("c2", "s1.com"),
            request("c1", "s2.com"),
            request("c2", "s2.com"),
            request("c3", "s3.com"),
        ])
        graph = build_client_graph(trace, LOOSE)
        assert graph.edge_weight("s1.com", "s2.com") == pytest.approx(1.0)
        assert not graph.has_edge("s1.com", "s3.com")
        assert "s3.com" in graph  # still a node

    def test_floor_filters_weak_pairs(self):
        trace = HttpTrace(
            [request("c0", "a.com"), request("c0", "b.com")]
            + [request(f"x{i}", "a.com") for i in range(9)]
            + [request(f"y{i}", "b.com") for i in range(9)]
        )
        # weight = (1/10)(1/10) = 0.01 < default floor 0.1.
        graph = build_client_graph(trace)
        assert not graph.has_edge("a.com", "b.com")


class TestFilenameSimilarity:
    def test_short_exact_match(self):
        assert filename_similarity("login.php", "login.php") == 1.0

    def test_short_no_partial_credit(self):
        assert filename_similarity("login.php", "logon.php") == 0.0

    def test_long_obfuscated_match(self):
        base = "abcdefghijklmnopqrstuvwxyz0123456789XYZT.php"
        shuffled = base[::-1]
        assert len(base) > 25
        assert filename_similarity(base, shuffled) == 1.0

    def test_long_unrelated_no_match(self):
        a = "a" * 30 + ".php"
        b = "b" * 30 + ".php"
        assert filename_similarity(a, b) == 0.0

    def test_mixed_length_uses_exact(self):
        short = "a.php"
        long_name = "a" * 40 + ".php"
        assert filename_similarity(short, long_name) == 0.0


class TestFileSimilarity:
    def test_equation_seven_short_files(self):
        # F1={x,y}, F2={x,z}: each direction 1/2 -> product 1/4.
        assert file_similarity({"x.php", "y.php"}, {"x.php", "z.php"}) == pytest.approx(0.25)

    def test_identical(self):
        assert file_similarity({"a.php"}, {"a.php"}) == 1.0

    def test_empty(self):
        assert file_similarity(set(), {"a.php"}) == 0.0

    def test_asymmetric_inventories(self):
        # Shared file is important to the small server, less to the big one.
        small = {"shared.php"}
        big = {"shared.php", "b.php", "c.php", "d.php"}
        assert file_similarity(small, big) == pytest.approx(1.0 * (1 / 4))

    def test_obfuscated_family_counts(self):
        fam1 = "qwertyuiopasdfghjklzxcvbnm123456.php"
        fam2 = fam1[::-1]
        assert file_similarity({fam1}, {fam2}) == 1.0


class TestUrifileGraph:
    def test_shared_file_connects(self):
        trace = HttpTrace([
            request("c1", "a.com", uri="/p/setup.php"),
            request("c2", "b.com", uri="/q/setup.php"),
        ])
        graph = build_urifile_graph(trace, LOOSE)
        assert graph.edge_weight("a.com", "b.com") == pytest.approx(1.0)

    def test_ubiquitous_file_ignored(self):
        requests = [
            request(f"c{i}", f"s{i}.com", uri="/index.html") for i in range(10)
        ]
        requests += [
            request("c1", "s0.com", uri="/rare.php"),
            request("c2", "s1.com", uri="/rare.php"),
        ]
        graph = build_urifile_graph(
            trace := HttpTrace(requests),
            DimensionConfig(max_file_server_fraction=0.5, min_edge_weight=1e-9),
        )
        # index.html is on 100% of servers -> ignored; rare.php links s0/s1.
        assert graph.has_edge("s0.com", "s1.com")
        assert graph.num_edges() == 1
        del trace

    def test_obfuscated_family_links_servers(self):
        fam = "qwertyuiopasdfghjklzxcvbnm123456"
        trace = HttpTrace([
            request("c1", "a.com", uri=f"/x/{fam}.php"),
            request("c2", "b.com", uri=f"/y/{fam[::-1]}.php"),
        ])
        graph = build_urifile_graph(trace, LOOSE)
        assert graph.has_edge("a.com", "b.com")


class TestIpsetGraph:
    def test_shared_ip(self):
        trace = HttpTrace([
            request("c1", "a.com", ip="9.9.9.9"),
            request("c2", "b.com", ip="9.9.9.9"),
            request("c3", "c.com", ip="8.8.8.8"),
        ])
        graph = build_ipset_graph(trace, LOOSE)
        assert graph.edge_weight("a.com", "b.com") == 1.0
        assert not graph.has_edge("a.com", "c.com")

    def test_equation_eight_partial_overlap(self):
        trace = HttpTrace([
            request("c1", "a.com", ip="9.9.9.9"),
            request("c1", "a.com", ip="8.8.8.8"),
            request("c2", "b.com", ip="9.9.9.9"),
        ])
        graph = build_ipset_graph(trace, LOOSE)
        # |Ia∩Ib|=1, |Ia|=2, |Ib|=1 -> 0.5.
        assert graph.edge_weight("a.com", "b.com") == pytest.approx(0.5)


def whois_record(domain, **overrides):
    defaults = dict(
        registrant="Evil Corp",
        address="1 Dark Alley",
        email="x@evil.example",
        phone="+7.123",
        name_servers=("ns1.evil.su", "ns2.evil.su"),
    )
    defaults.update(overrides)
    return WhoisRecord(domain=domain, **defaults)


class TestWhoisSimilarity:
    def test_all_shared(self):
        assert whois_similarity(whois_record("a.com"), whois_record("b.com")) == 1.0

    def test_two_field_minimum(self):
        a = whois_record("a.com")
        b = whois_record(
            "b.com",
            registrant="Other",
            address="2 Other St",
            email="y@o.com",
            phone="+1.9",
        )
        # Only name_servers shared -> below minimum -> 0.
        assert whois_similarity(a, b) == 0.0

    def test_ratio(self):
        a = whois_record("a.com")
        b = whois_record("b.com", registrant="Different Person")
        # 4 of 5 fields shared, union 5.
        assert whois_similarity(a, b) == pytest.approx(4 / 5)

    def test_proxy_fields_masked(self):
        proxy_kwargs = dict(
            registrant="WhoisGuard",
            address="PO Box",
            email="p@x",
            phone="+0",
            is_proxy=True,
        )
        a = whois_record("a.com", **proxy_kwargs)
        b = whois_record("b.com", **proxy_kwargs)
        # Both proxied: only name servers comparable -> below two-field rule.
        assert whois_similarity(a, b) == 0.0
        assert set(comparable_fields(a)) == {"name_servers"}


class TestWhoisGraph:
    def test_registered_herd_connects(self):
        trace = HttpTrace([request("c1", "a.com"), request("c2", "b.com"),
                           request("c3", "c.com")])
        registry = WhoisRegistry([
            whois_record("a.com"),
            whois_record("b.com"),
            whois_record("c.com", registrant="Someone Else", address="9 Elm",
                         email="z@c.com", phone="+44.1",
                         name_servers=("ns1.other.com",)),
        ])
        graph = build_whois_graph(trace, registry, LOOSE)
        assert graph.has_edge("a.com", "b.com")
        assert not graph.has_edge("a.com", "c.com")

    def test_unregistered_servers_isolated(self):
        trace = HttpTrace([request("c1", "a.com"), request("c2", "10.0.0.1")])
        graph = build_whois_graph(trace, WhoisRegistry([whois_record("a.com")]), LOOSE)
        assert "10.0.0.1" in graph
        assert graph.num_edges() == 0
