"""Unit tests for the HTTP-log substrate: URIs, records, traces, loader."""

import pytest

from repro.errors import TraceError
from repro.httplog.loader import read_jsonl, write_jsonl
from repro.httplog.records import HttpRequest
from repro.httplog.trace import HttpTrace
from repro.httplog.uri import query_parameter_names, split_uri, uri_file


def make_request(**overrides):
    defaults = dict(
        timestamp=1.0,
        client="c1",
        host="example.com",
        server_ip="1.2.3.4",
        uri="/images/news.php?p=1&id=2",
    )
    defaults.update(overrides)
    return HttpRequest(**defaults)


class TestSplitUri:
    def test_basic(self):
        parts = split_uri("/images/news.php?p=1&id=2")
        assert parts.path == "/images/"
        assert parts.filename == "news.php"
        assert parts.query == "p=1&id=2"

    def test_root(self):
        parts = split_uri("/")
        assert (parts.path, parts.filename, parts.query) == ("/", "", "")

    def test_no_query(self):
        assert split_uri("/a/b.html").query == ""

    def test_fragment_stripped(self):
        assert split_uri("/a/b.html#frag").filename == "b.html"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            split_uri("")

    def test_no_slash(self):
        parts = split_uri("weird.php?x=1")
        assert parts.filename == "weird.php"
        assert parts.query == "x=1"


class TestUriFile:
    def test_paper_definition(self):
        # "substring of a URI starting from the last '/' until the end
        # before the question mark" (Section III-B2).
        assert uri_file("/images/news.php?p=16435&id=21799517&e=0") == "news.php"

    def test_directory_maps_to_slash(self):
        # Sality C&C domains share the "/" file (Table VIII).
        assert uri_file("/") == "/"
        assert uri_file("/images/") == "/"

    def test_deep_path(self):
        assert uri_file("/wp-content/uploads/sm3.php") == "sm3.php"


class TestQueryParameterNames:
    def test_bagle_pattern(self):
        # Bagle C&C pattern "p=[]&id=[]&e=[]" (Table VII).
        assert query_parameter_names("/news.php?p=1&id=2&e=0") == ("e", "id", "p")

    def test_no_query(self):
        assert query_parameter_names("/a.html") == ()

    def test_deduplicated(self):
        assert query_parameter_names("/x?a=1&a=2&b=3") == ("a", "b")


class TestHttpRequest:
    def test_uri_file_property(self):
        assert make_request().uri_file == "news.php"

    def test_parameter_names_property(self):
        assert make_request().parameter_names == ("id", "p")

    def test_is_error(self):
        assert make_request(status=404).is_error
        assert make_request(status=503).is_error
        assert not make_request(status=200).is_error
        assert not make_request(status=302).is_error

    def test_relative_uri_rejected(self):
        with pytest.raises(ValueError):
            make_request(uri="news.php")

    def test_empty_client_rejected(self):
        with pytest.raises(ValueError):
            make_request(client="")

    def test_empty_host_rejected(self):
        with pytest.raises(ValueError):
            make_request(host="")

    def test_dict_round_trip(self):
        request = make_request(user_agent="Bot/1", referrer="http://r/", status=302)
        assert HttpRequest.from_dict(request.to_dict()) == request


class TestHttpTrace:
    def make_trace(self):
        return HttpTrace(
            [
                make_request(client="c1", host="a.com", server_ip="1.1.1.1", uri="/x.php"),
                make_request(client="c2", host="a.com", server_ip="1.1.1.2", uri="/y.php"),
                make_request(client="c1", host="b.com", server_ip="2.2.2.2", uri="/x.php"),
            ]
        )

    def test_clients_by_server(self):
        trace = self.make_trace()
        assert trace.clients_by_server["a.com"] == frozenset({"c1", "c2"})
        assert trace.clients_by_server["b.com"] == frozenset({"c1"})

    def test_files_by_server(self):
        trace = self.make_trace()
        assert trace.files_by_server["a.com"] == frozenset({"x.php", "y.php"})

    def test_ips_by_server(self):
        assert self.make_trace().ips_by_server["a.com"] == frozenset({"1.1.1.1", "1.1.1.2"})

    def test_servers_by_client(self):
        assert self.make_trace().servers_by_client["c1"] == frozenset({"a.com", "b.com"})

    def test_stats(self):
        stats = self.make_trace().stats()
        assert stats.num_clients == 2
        assert stats.num_requests == 3
        assert stats.num_servers == 2
        # Distinct (server, file) pairs: a.com x 2 + b.com x 1.
        assert stats.num_uri_files == 3

    def test_map_hosts(self):
        mapped = self.make_trace().map_hosts(lambda h: "x-" + h)
        assert mapped.servers == frozenset({"x-a.com", "x-b.com"})
        # Original trace untouched.
        assert self.make_trace().servers == frozenset({"a.com", "b.com"})

    def test_filter_servers(self):
        kept = self.make_trace().filter_servers(lambda h: h == "a.com")
        assert kept.servers == frozenset({"a.com"})
        assert len(kept) == 2

    def test_restrict_to_servers(self):
        kept = self.make_trace().restrict_to_servers(["b.com"])
        assert kept.servers == frozenset({"b.com"})

    def test_concat(self):
        trace = self.make_trace()
        combined = HttpTrace.concat([trace, trace])
        assert len(combined) == 6

    def test_equality_and_hash(self):
        assert self.make_trace() == self.make_trace()
        assert hash(self.make_trace()) == hash(self.make_trace())

    def test_time_window(self):
        trace = HttpTrace([make_request(timestamp=5.0), make_request(timestamp=2.0)])
        assert trace.time_window() == (2.0, 5.0)

    def test_time_window_empty_raises(self):
        with pytest.raises(TraceError):
            HttpTrace([]).time_window()

    def test_rejects_non_requests(self):
        with pytest.raises(TraceError):
            HttpTrace(["not a request"])  # type: ignore[list-item]


class TestLoader:
    def test_round_trip(self, tmp_path):
        trace = HttpTrace([make_request(), make_request(client="c2", status=404)])
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(trace, path) == 2
        loaded = read_jsonl(path)
        assert loaded == trace

    def test_gzip_round_trip(self, tmp_path):
        trace = HttpTrace([make_request()])
        path = tmp_path / "trace.jsonl.gz"
        write_jsonl(trace, path)
        assert read_jsonl(path) == trace

    def test_malformed_line_reports_lineno(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ts": 1}\n')
        with pytest.raises(TraceError, match="bad.jsonl:1"):
            read_jsonl(path)

    def test_blank_lines_skipped(self, tmp_path):
        trace = HttpTrace([make_request()])
        path = tmp_path / "trace.jsonl"
        write_jsonl(trace, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(read_jsonl(path)) == 1
