"""Tests for the CLI round trip and the export module."""

import json

import pytest

from repro.cli import main
from repro.eval.export import herds_to_dot, result_to_dict, write_result_json


class TestExport:
    def test_result_to_dict_shape(self, small_result):
        data = result_to_dict(small_result)
        assert data["campaigns"]
        first = data["campaigns"][0]
        assert set(first) >= {"id", "servers", "clients", "scores", "dimensions"}
        assert data["detected_servers"] == sorted(data["detected_servers"])
        assert "client" in data["herd_counts"]

    def test_json_round_trip(self, small_result, tmp_path):
        path = tmp_path / "out" / "campaigns.json"
        write_result_json(small_result, path)
        data = json.loads(path.read_text())
        assert len(data["campaigns"]) == len(small_result.campaigns)

    def test_dot_output(self, small_result):
        dot = herds_to_dot(small_result, "client")
        assert dot.startswith('graph "client_herds"')
        assert dot.rstrip().endswith("}")
        assert "tomato" in dot  # detected servers highlighted

    def test_dot_unknown_dimension_empty(self, small_result):
        dot = herds_to_dot(small_result, "nope")
        assert "subgraph" not in dot


class TestCliRoundTrip:
    @pytest.fixture(scope="class")
    def generated(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("cli") / "day0"
        code = main([
            "generate",
            "--scenario",
            "small",
            "--seed",
            "7",
            "--out",
            str(out),
        ])
        assert code == 0
        return out

    def test_generate_artifacts(self, generated):
        for name in ("trace.jsonl", "whois.json", "redirects.json", "truth.json"):
            assert (generated / name).exists(), name

    def test_run_produces_campaigns(self, generated, tmp_path):
        out = tmp_path / "campaigns.json"
        code = main([
            "run",
            "--trace",
            str(generated / "trace.jsonl"),
            "--whois",
            str(generated / "whois.json"),
            "--redirects",
            str(generated / "redirects.json"),
            "--out",
            str(out),
        ])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["campaigns"]
        # The CLI path must find the planted zeus herd like the API path.
        truth = json.loads((generated / "truth.json").read_text())
        zeus = next(c for c in truth["campaigns"] if c["name"] == "small-zeus")
        assert set(zeus["servers"]) <= set(data["detected_servers"])

    def test_run_with_dimension_subset(self, generated, tmp_path):
        out = tmp_path / "campaigns_urifile.json"
        code = main([
            "run",
            "--trace",
            str(generated / "trace.jsonl"),
            "--dimensions",
            "urifile",
            "--out",
            str(out),
        ])
        assert code == 0
        data = json.loads(out.read_text())
        for campaign in data["campaigns"]:
            for dims in campaign["dimensions"].values():
                assert set(dims) <= {"urifile"}

    def test_report_prints_summary(self, generated, tmp_path, capsys):
        out = tmp_path / "campaigns.json"
        main([
            "run",
            "--trace",
            str(generated / "trace.jsonl"),
            "--whois",
            str(generated / "whois.json"),
            "--out",
            str(out),
        ])
        code = main(["report", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "inferred campaigns" in captured
        assert "campaign #" in captured

    def test_bad_dimension_rejected(self, generated, tmp_path):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            main([
                "run",
                "--trace",
                str(generated / "trace.jsonl"),
                "--dimensions",
                "telepathy",
                "--out",
                str(tmp_path / "x.json"),
            ])
