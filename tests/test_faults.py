"""Fault injection, retry policy, and chaos recovery (repro.core.faults).

The deterministic fault layer's contract: under an explicit
:class:`FaultPlan`, every dispatcher retries retryable failures on fresh
spill names, quarantines the failed bytes with a reason file, reassigns
exhausted shards inline, and — the acceptance criterion — produces
output byte-identical to the fault-free single-pass mine.  Fatal errors
(corrupt source partitions) must fail fast instead.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys

from pathlib import Path

import pytest

from repro.config import SmashConfig
from repro.core.dispatch import ShardDispatcher, SubprocessDispatcher
from repro.core.faults import (
    FAULT_KINDS,
    RECOVERABLE_KINDS,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    ShardRetriesExhaustedError,
    attempt_spec,
    failure_label,
    is_retryable,
    rebuild_error,
    run_with_retry,
    transient,
)
from repro.core.pipeline import SmashPipeline
from repro.errors import (
    ConfigError,
    PipelineError,
    ShardTimeoutError,
    StreamError,
    WorkerError,
)
from repro.eval.export import result_to_dict
from repro.obs import MetricsRegistry
from repro.stream.store import PartialStore
from repro.synth.generator import TraceGenerator
from repro.synth.scenarios import small_scenario

SRC_DIR = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(scope="module")
def dataset():
    return TraceGenerator(small_scenario(seed=7)).generate_day(0)


@pytest.fixture(scope="module")
def clean_doc(dataset):
    result = SmashPipeline(SmashConfig()).run(
        dataset.trace, whois=dataset.whois, redirects=dataset.redirects
    )
    return json.dumps(result_to_dict(result), sort_keys=True)


def result_doc(result) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True)


def _counter_total(registry: MetricsRegistry, name: str) -> float:
    family = registry.get(name)
    if family is None:
        return 0.0
    return sum(child.value for _, child in family.samples())


# -- the plan -----------------------------------------------------------------------


class TestFaultPlan:
    def test_roundtrips_through_json(self):
        plan = FaultPlan(
            (
                FaultSpec(shard=0, kind="crash_before_spill", attempt=1),
                FaultSpec(shard=2, kind="hang", attempt=None, seconds=9.0),
            )
        )
        rebuilt = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert rebuilt == plan

    def test_fault_for_matches_attempt_or_always(self):
        plan = FaultPlan(
            (
                FaultSpec(shard=0, kind="stream_error", attempt=2),
                FaultSpec(shard=1, kind="corrupt_source", attempt=None),
            )
        )
        assert plan.fault_for(0, 1) is None
        assert plan.fault_for(0, 2).kind == "stream_error"
        # attempt=None models a persistent fault: it fires every time.
        assert plan.fault_for(1, 1).kind == "corrupt_source"
        assert plan.fault_for(1, 5).kind == "corrupt_source"
        assert plan.fault_for(2, 1) is None

    def test_first_matching_trigger_wins(self):
        plan = FaultPlan(
            (
                FaultSpec(shard=0, kind="stream_error", attempt=1),
                FaultSpec(shard=0, kind="corrupt_source", attempt=None),
            )
        )
        assert plan.fault_for(0, 1).kind == "stream_error"

    def test_generate_covers_all_kinds_deterministically(self):
        plan = FaultPlan.generate(3)
        assert [fault.kind for fault in plan.faults] == list(RECOVERABLE_KINDS)
        assert [(fault.shard, fault.attempt) for fault in plan.faults] == [
            (0, 1), (1, 1), (2, 1), (0, 2), (1, 2), (2, 2),
        ]
        assert FaultPlan.generate(3) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            FaultSpec(shard=0, kind="meteor_strike")

    def test_load_from_file_and_bad_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(FaultPlan.generate(2).to_dict()))
        assert FaultPlan.load(path) == FaultPlan.generate(2)
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="cannot load fault plan"):
            FaultPlan.load(path)

    def test_config_validates_retry_fields(self):
        with pytest.raises(ConfigError, match="shard_retries"):
            SmashConfig().replace(shard_retries=-1).validate()
        with pytest.raises(ConfigError, match="shard_timeout"):
            SmashConfig().replace(shard_timeout=0.0).validate()
        # fault_plan is an execution strategy: excluded from equality.
        assert SmashConfig() == SmashConfig().replace(fault_plan=FaultPlan.generate(1))


# -- retry policy and classification ------------------------------------------------


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.5)
        assert [policy.backoff(n) for n in (1, 2, 3, 4, 9)] == [
            0.1, 0.2, 0.4, 0.5, 0.5,
        ]

    def test_from_config_maps_retries_to_attempts(self):
        policy = RetryPolicy.from_config(
            SmashConfig().replace(shard_retries=4, shard_timeout=33.0)
        )
        assert policy.max_attempts == 5
        assert policy.timeout == 33.0

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(timeout=0.0)


class TestClassification:
    def test_worker_errors_always_retryable(self):
        assert is_retryable(WorkerError("boom"))
        assert is_retryable(ShardTimeoutError("slow"))

    def test_stream_errors_retryable_only_when_marked(self):
        assert not is_retryable(StreamError("corrupt partition"))
        assert is_retryable(transient(StreamError("flaky mount")))
        assert not is_retryable(PipelineError("bad spec"))

    def test_failure_labels(self):
        assert failure_label(ShardTimeoutError("t")) == "timeout"
        assert failure_label(WorkerError("w")) == "crash"
        assert failure_label(StreamError("s")) == "stream_error"
        assert failure_label(PipelineError("p")) == "error"

    def test_rebuild_error_restores_type_and_retryable(self):
        error = rebuild_error("ShardTimeoutError", "late")
        assert isinstance(error, ShardTimeoutError)
        rebuilt = rebuild_error("StreamError", "torn", retryable=True)
        assert isinstance(rebuilt, StreamError) and is_retryable(rebuilt)
        assert isinstance(rebuild_error("Weird", "x"), PipelineError)


# -- attempt specs ------------------------------------------------------------------


class TestAttemptSpec:
    def test_fresh_spill_name_per_retry(self):
        spec = {"shard": 3, "spill_root": "/tmp/x"}
        assert attempt_spec(spec, 1, None)["spill_name"] == "index-0003"
        assert attempt_spec(spec, 2, None)["spill_name"] == "index-0003.r2"

    def test_fault_embedded_only_when_plan_matches(self):
        plan = FaultPlan((FaultSpec(shard=3, kind="stream_error", attempt=2),))
        spec = {"shard": 3, "spill_root": "/tmp/x", "fault": {"kind": "stale"}}
        # A stale fault from a previous attempt never leaks through.
        assert "fault" not in attempt_spec(spec, 1, plan)
        assert attempt_spec(spec, 2, plan)["fault"]["kind"] == "stream_error"


# -- the retry loop (unit, with fake jobs) ------------------------------------------


def _fake_job(spill_root):
    """An attempt_call that spills honestly — the success case."""

    def call(spec):
        spill = PartialStore(spill_root)
        digest, _ = spill.put(spec["spill_name"], {"ok": True})
        return {"shard": spec["shard"], "name": spec["spill_name"], "digest": digest}

    return call


class TestRunWithRetry:
    def test_first_attempt_success(self, tmp_path):
        spec = {"shard": 0, "spill_root": str(tmp_path / "spill")}
        result = run_with_retry(spec, _fake_job(spec["spill_root"]), RetryPolicy())
        assert result["attempts"] == 1 and result["failures"] == []

    def test_retries_then_succeeds_with_quarantine(self, tmp_path):
        spill_root = str(tmp_path / "spill")
        attempts = []

        def flaky(spec):
            attempts.append(spec["spill_name"])
            if len(attempts) < 3:
                raise transient(StreamError(f"flaky on {spec['spill_name']}"))
            return _fake_job(spill_root)(spec)

        spec = {"shard": 1, "spill_root": spill_root}
        policy = RetryPolicy(max_attempts=3, backoff_base=0.0, backoff_cap=0.0)
        result = run_with_retry(spec, flaky, policy)
        # Fresh spill name per attempt: a dead attempt can never shadow
        # a later good one.
        assert attempts == ["index-0001", "index-0001.r2", "index-0001.r3"]
        assert result["attempts"] == 3
        assert [entry["label"] for entry in result["failures"]] == [
            "stream_error", "stream_error",
        ]
        quarantine = PartialStore.quarantine_root(Path(spill_root))
        reasons = sorted(quarantine.glob("*/REASON.json"))
        assert len(reasons) == 2
        reason = json.loads(reasons[0].read_text())
        assert reason["shard"] == 1 and reason["retryable"] is True

    def test_fatal_error_propagates_immediately(self, tmp_path):
        calls = []

        def fatal(spec):
            calls.append(spec["spill_name"])
            raise StreamError("corrupt partition in store")

        spec = {"shard": 0, "spill_root": str(tmp_path / "spill")}
        with pytest.raises(StreamError, match="corrupt partition") as info:
            run_with_retry(spec, fatal, RetryPolicy(max_attempts=5))
        assert calls == ["index-0000"]  # no retry burned on a data error
        assert len(info.value.shard_failures) == 1

    def test_exhaustion_raises_with_history(self, tmp_path):
        def always_crash(spec):
            raise WorkerError("worker died")

        spec = {"shard": 2, "spill_root": str(tmp_path / "spill")}
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0, backoff_cap=0.0)
        with pytest.raises(ShardRetriesExhaustedError, match="shard 2 failed 2"):
            run_with_retry(spec, always_crash, policy)

    def test_exhausted_error_pickles(self):
        error = ShardRetriesExhaustedError(4, [{"attempt": 1, "message": "boom"}])
        clone = pickle.loads(pickle.dumps(error))
        assert clone.shard == 4 and clone.failures == error.failures

    def test_digest_verification_gates_success(self, tmp_path):
        # A worker that reports a digest its spilled bytes don't match
        # (torn write, vanished file) fails the attempt even though the
        # job itself "succeeded".
        spill_root = str(tmp_path / "spill")

        def liar(spec):
            spill = PartialStore(spill_root)
            digest, _ = spill.put(spec["spill_name"], {"ok": True})
            spill.path_of(spec["spill_name"]).write_bytes(b"torn")
            return {"shard": 0, "name": spec["spill_name"], "digest": digest}

        spec = {"shard": 0, "spill_root": spill_root}
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0, backoff_cap=0.0)
        with pytest.raises(ShardRetriesExhaustedError) as info:
            run_with_retry(spec, liar, policy)
        assert all(
            entry["label"] == "stream_error" for entry in info.value.failures
        )
        # The torn bytes were preserved as evidence, not deleted.
        quarantine = PartialStore.quarantine_root(Path(spill_root))
        assert sorted(path.name for path in quarantine.glob("*/*.json")) == [
            "REASON.json",
            "REASON.json",
            "index-0000.json",
            "index-0000.r2.json",
        ]


class TestPartialStoreDiagnostics:
    def test_mismatch_message_names_path_and_both_digests(self, tmp_path):
        store = PartialStore(tmp_path / "spill")
        digest, _ = store.put("index-0000", {"ok": True})
        store.path_of("index-0000").write_bytes(b"torn")
        with pytest.raises(StreamError) as info:
            store.verify("index-0000", digest)
        message = str(info.value)
        # Full digests and the exact path: enough to diff the bytes by
        # hand without re-running anything.
        assert str(store.path_of("index-0000")) in message
        assert digest in message
        import hashlib

        assert hashlib.sha256(b"torn").hexdigest() in message
        assert is_retryable(info.value)

    def test_missing_partial_is_retryable(self, tmp_path):
        store = PartialStore(tmp_path / "spill")
        with pytest.raises(StreamError, match="missing spilled partial") as info:
            store.verify("index-0007", "0" * 64)
        assert is_retryable(info.value)


# -- dispatcher-level behaviour -----------------------------------------------------


class _FakeBatchDispatcher(ShardDispatcher):
    """Feed canned outcomes through the shared run() interpretation."""

    def __init__(self, outcomes):
        super().__init__()
        self._outcomes = outcomes

    def _run_batch(self, specs):
        return self._outcomes


class TestDispatcherRun:
    def test_lowest_shard_error_wins_deterministically(self):
        # Satellite fix: whatever order the batch fails in, the raised
        # error is the lowest-numbered shard's.
        outcomes = [
            {"error": {"kind": "StreamError", "message": "shard 5 bad"}, "shard": 5},
            {"cancelled": True},
            {"error": {"kind": "StreamError", "message": "shard 1 bad"}, "shard": 1},
        ]
        specs = [{"shard": 5}, {"shard": 3}, {"shard": 1}]
        with pytest.raises(StreamError, match="shard 1 bad"):
            _FakeBatchDispatcher(outcomes).run(specs)

    def test_ok_outcomes_in_spec_order(self):
        outcomes = [{"ok": {"shard": 0, "attempts": 1}}, {"ok": {"shard": 1, "attempts": 1}}]
        results = _FakeBatchDispatcher(outcomes).run([{"shard": 0}, {"shard": 1}])
        assert [r["shard"] for r in results] == [0, 1]

    def test_timeout_expired_translates_to_shard_timeout_error(self, monkeypatch):
        # Satellite fix: raw subprocess.TimeoutExpired must never leak;
        # the error names the shard and the configured budget, and is
        # retryable (a PipelineError subclass).
        import repro.core.dispatch as dispatch_module

        def hang_forever(*args, **kwargs):
            raise subprocess.TimeoutExpired(cmd="worker", timeout=kwargs["timeout"])

        monkeypatch.setattr(dispatch_module.subprocess, "run", hang_forever)
        dispatcher = SubprocessDispatcher(workers=1, policy=RetryPolicy(timeout=7.0))
        try:
            with pytest.raises(ShardTimeoutError, match=r"shard 9 .*7s.*shard_timeout"):
                dispatcher._run_one({"shard": 9})
        finally:
            dispatcher.close()
        assert issubclass(ShardTimeoutError, PipelineError)

    def test_subprocess_ctor_backwards_compatible(self):
        # PR 9 call sites construct SubprocessDispatcher(workers=N) with
        # no policy/plan/recorder; defaults must keep that working.
        dispatcher = SubprocessDispatcher(workers=1)
        assert dispatcher.policy.max_attempts == 3
        dispatcher.close()


# -- end-to-end recovery (in-process dispatchers) -----------------------------------


class TestChaosRecovery:
    @staticmethod
    def _mine(dataset, config):
        return SmashPipeline(config).run(
            dataset.trace, whois=dataset.whois, redirects=dataset.redirects
        )

    @pytest.mark.parametrize("dispatch", ["serial", "pool"])
    def test_all_six_kinds_recover_byte_identical(
        self, dataset, clean_doc, dispatch
    ):
        registry = MetricsRegistry()
        config = SmashConfig().replace(
            shards=3,
            dispatch=dispatch,
            fault_plan=FaultPlan.generate(3),
            metrics=registry,
        )
        result = self._mine(dataset, config)
        assert result_doc(result) == clean_doc
        assert _counter_total(registry, "smash_shard_worker_failures_total") == 6
        assert _counter_total(registry, "smash_shard_retries_total") == 6

    def test_exhausted_shard_reassigned_inline(self, dataset, clean_doc):
        # A persistent crash exhausts the budget; the coordinator then
        # absorbs the job inline (fault-free) and the mine still lands
        # on the identical bytes — graceful degradation, not failure.
        registry = MetricsRegistry()
        config = SmashConfig().replace(
            shards=3,
            dispatch="serial",
            shard_retries=1,
            fault_plan=FaultPlan((FaultSpec(shard=1, kind="crash_before_spill"),)),
            metrics=registry,
        )
        result = self._mine(dataset, config)
        assert result_doc(result) == clean_doc
        assert _counter_total(registry, "smash_shard_reassigned_total") == 1
        assert _counter_total(registry, "smash_shard_worker_failures_total") == 2

    def test_fatal_corrupt_source_fails_fast_with_quarantine(
        self, dataset, tmp_path
    ):
        config = SmashConfig().replace(
            shards=3,
            dispatch="serial",
            fault_plan=FaultPlan((FaultSpec(shard=0, kind="corrupt_source"),)),
        )
        with pytest.raises(StreamError, match="injected corrupt source"):
            SmashPipeline(config).mine(
                dataset.trace, whois=dataset.whois, spill_dir=tmp_path
            )
        # The failed attempt left a quarantine entry with its reason —
        # surviving the mine's own spill cleanup.
        reasons = list(tmp_path.glob("mine-*.quarantine/*/REASON.json"))
        assert len(reasons) == 1
        reason = json.loads(reasons[0].read_text())
        assert reason["fault"]["kind"] == "corrupt_source"
        assert reason["retryable"] is False
        # ...but the spill roots themselves were cleaned up as usual.
        assert [p for p in tmp_path.glob("mine-*") if not p.name.endswith(".quarantine")] == []

    def test_per_attempt_spans_recorded(self, dataset):
        registry = MetricsRegistry()
        config = SmashConfig().replace(
            shards=2,
            dispatch="serial",
            fault_plan=FaultPlan((FaultSpec(shard=0, kind="stream_error", attempt=1),)),
            metrics=registry,
        )
        self._mine(dataset, config)
        spans = registry.spans_named("pipeline.mine.shard_attempt")
        kinds = sorted(span.attributes["kind"] for span in spans)
        assert kinds == ["ok", "ok", "stream_error"]

    def test_engine_accepts_fault_overrides(self):
        from repro.stream import StreamingSmash

        plan = FaultPlan.generate(2)
        engine = StreamingSmash(shard_retries=5, shard_timeout=12.0, fault_plan=plan)
        assert engine.config.shard_retries == 5
        assert engine.config.shard_timeout == 12.0
        assert engine.config.fault_plan is plan
        engine.close()


# -- the chaos CLI ------------------------------------------------------------------


class TestChaosCli:
    def test_in_process_chaos_serial(self, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        report = tmp_path / "chaos.json"
        code = main(
            [
                "chaos",
                "--dispatch",
                "serial",
                "--shards",
                "2",
                "--kinds",
                "stream_error,crash_before_spill",
                "--report",
                str(report),
            ]
        )
        assert code == 0
        doc = json.loads(report.read_text())
        assert doc["identical"] is True
        assert doc["chaos_digest"] == doc["clean_digest"]
        assert doc["worker_failures"] == 2 and doc["retries"] == 2

    def test_fatal_plan_exits_nonzero(self, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        plan_path = tmp_path / "fatal.json"
        plan_path.write_text(
            json.dumps({"faults": [{"shard": 0, "kind": "corrupt_source"}]})
        )
        report = tmp_path / "chaos.json"
        code = main(
            [
                "chaos",
                "--dispatch",
                "serial",
                "--shards",
                "2",
                "--fault-plan",
                str(plan_path),
                "--report",
                str(report),
            ]
        )
        assert code == 1
        doc = json.loads(report.read_text())
        assert doc["identical"] is False
        assert "StreamError" in doc["error"]


# -- acceptance matrix: subprocess dispatch, shards 1/2/7, two hash seeds -----------
#
# In-process tests cannot vary PYTHONHASHSEED, so the acceptance
# criterion — recovery from all six fault kinds stays byte-identical to
# the fault-free single-pass mine under any hash seed — runs `repro
# chaos` in pinned fresh interpreters, mirroring test_shardmine.py.

CHAOS_MATRIX = ((1, 1), (2, 2), (7, 1))  # (shards, PYTHONHASHSEED)


def test_chaos_subprocess_matrix_is_seed_invariant(tmp_path: Path) -> None:
    digests = set()
    for shards, hash_seed in CHAOS_MATRIX:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = str(hash_seed)
        env["PYTHONPATH"] = str(SRC_DIR) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        report = tmp_path / f"chaos_{shards}_{hash_seed}.json"
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "chaos",
                "--dispatch",
                "subprocess",
                "--shards",
                str(shards),
                "--shard-timeout",
                "10",
                "--report",
                str(report),
            ],
            env=env,
            cwd=tmp_path,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert completed.returncode == 0, (
            f"chaos run (shards={shards}, seed={hash_seed}) failed:\n"
            f"{completed.stdout}\n{completed.stderr}"
        )
        doc = json.loads(report.read_text())
        assert doc["identical"] is True
        assert doc["worker_failures"] > 0, "the plan must actually have fired"
        assert len(doc["plan"]["faults"]) == len(FAULT_KINDS) - 1  # all recoverable
        digests.add(doc["clean_digest"])
        digests.add(doc["chaos_digest"])
    # One digest across every shard count and hash seed: the recovered
    # sharded mines and the fault-free single-pass mines all agree.
    assert len(digests) == 1
