"""Unit tests for configuration validation and derivation helpers."""

import pytest

from repro.config import (
    CorrelationConfig,
    DimensionConfig,
    LouvainConfig,
    PreprocessConfig,
    PruningConfig,
    SmashConfig,
)
from repro.errors import ConfigError


class TestDefaultsMatchPaper:
    def test_idf_threshold(self):
        assert PreprocessConfig().idf_threshold == 200  # Appendix A

    def test_filename_cutoff(self):
        assert DimensionConfig().filename_length_cutoff == 25  # Appendix B

    def test_filename_cosine(self):
        assert DimensionConfig().filename_cosine_threshold == 0.8  # eq. 4

    def test_whois_two_fields(self):
        assert DimensionConfig().whois_min_shared_fields == 2

    def test_sigmoid_parameters(self):
        cfg = CorrelationConfig()
        assert cfg.mu == 4.0 and cfg.sigma == 5.5  # footnote 6

    def test_thresholds(self):
        cfg = CorrelationConfig()
        assert cfg.thresh == 0.8  # Section V-A1
        assert cfg.single_client_thresh == 1.0  # Appendix C

    def test_default_secondary_dimensions(self):
        assert SmashConfig().enabled_secondary_dimensions == (
            "urifile",
            "ipset",
            "whois",
        )


class TestValidation:
    def test_valid_default(self):
        SmashConfig().validate()

    @pytest.mark.parametrize(
        "config",
        [
            PreprocessConfig(idf_threshold=0),
            PreprocessConfig(min_clients=0),
            DimensionConfig(filename_length_cutoff=0),
            DimensionConfig(filename_cosine_threshold=0.0),
            DimensionConfig(filename_cosine_threshold=1.5),
            DimensionConfig(whois_min_shared_fields=0),
            DimensionConfig(min_edge_weight=-1.0),
            DimensionConfig(client_min_edge_weight=-0.1),
            DimensionConfig(max_file_server_fraction=0.0),
            CorrelationConfig(sigma=0.0),
            CorrelationConfig(thresh=-1.0),
            PruningConfig(group_share_fraction=0.0),
            LouvainConfig(max_levels=0),
            LouvainConfig(max_sweeps=0),
            LouvainConfig(min_modularity_gain=-1.0),
            LouvainConfig(min_refine_size=1),
            LouvainConfig(refine_min_modularity=1.0),
            LouvainConfig(refine_density_stop=1.5),
        ],
    )
    def test_invalid_values_rejected(self, config):
        with pytest.raises(ConfigError):
            config.validate()

    def test_unknown_dimension_rejected(self):
        with pytest.raises(ConfigError):
            SmashConfig(enabled_secondary_dimensions=("urifile", "dns")).validate()

    def test_min_campaign_clients(self):
        with pytest.raises(ConfigError):
            SmashConfig(min_campaign_clients=0).validate()


class TestDerivation:
    def test_with_thresh(self):
        cfg = SmashConfig().with_thresh(1.5)
        assert cfg.correlation.thresh == 1.5
        assert cfg.correlation.mu == 4.0  # other parameters preserved
        assert SmashConfig().correlation.thresh == 0.8  # original untouched

    def test_replace(self):
        cfg = SmashConfig().replace(min_campaign_clients=5)
        assert cfg.min_campaign_clients == 5

    def test_frozen(self):
        with pytest.raises(Exception):
            SmashConfig().min_campaign_clients = 3  # type: ignore[misc]
