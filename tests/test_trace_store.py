"""On-disk trace store: partition round-trips, content addressing,
corruption detection, store-backed windows and metadata checkpoints."""

import json
import shutil

import pytest

from repro.errors import StreamError
from repro.httplog.records import HttpRequest
from repro.httplog.trace import HttpTrace
from repro.stream import (
    CHECKPOINT_VERSION,
    DayPartition,
    PartitionRef,
    RollingWindow,
    StreamingSmash,
    TraceStore,
    load_checkpoint,
    partition_digest,
    save_checkpoint,
)
from repro.synth import TraceGenerator, small_scenario
from repro.synth.oracles import RedirectOracle
from repro.whois.record import WhoisRecord
from repro.whois.registry import WhoisRegistry


def request(client, host, uri="/x.html", timestamp=0.0):
    return HttpRequest(
        timestamp=timestamp, client=client, host=host, server_ip="1.1.1.1", uri=uri
    )


def partition(day, hosts, whois=None, redirects=None):
    trace = HttpTrace(
        [request(f"c{day}", host) for host in hosts], name=f"day{day}"
    )
    return DayPartition(day=day, trace=trace, whois=whois, redirects=redirects)


def rich_partition(day=3):
    """A partition exercising every sidecar."""
    whois = WhoisRegistry([WhoisRecord(domain="a.com", registrant="r")])
    redirects = RedirectOracle(landing_of={"a.com": "land.com"})
    return partition(day, ["a.com", "b.com"], whois=whois, redirects=redirects)


class TestTraceStore:
    def test_put_get_round_trip(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        original = rich_partition()
        ref = store.put(original)
        loaded = store.get(3, digest=ref.digest)
        assert loaded.day == 3
        assert loaded.trace == original.trace
        assert loaded.trace.name == "day3"
        assert loaded.whois.lookup("a.com").registrant == "r"
        assert loaded.redirects.landing_server("a.com") == "land.com"
        assert partition_digest(loaded) == ref.digest

    def test_put_is_idempotent(self, tmp_path):
        store = TraceStore(tmp_path)
        first = store.put(rich_partition())
        second = store.put(rich_partition())
        assert first.digest == second.digest
        assert len(list(tmp_path.glob("day-*"))) == 1

    def test_same_day_different_content_gets_new_address(self, tmp_path):
        store = TraceStore(tmp_path)
        a = store.put(partition(1, ["a.com"]))
        b = store.put(partition(1, ["b.com"]))
        assert a.digest != b.digest
        assert len(list(tmp_path.glob("day-00001-*"))) == 2
        # Addressed get returns the exact variant.
        assert store.get(1, digest=a.digest).trace != store.get(1, digest=b.digest).trace
        # Day-only get refuses to guess between variants.
        with pytest.raises(StreamError, match="variants"):
            store.get(1)

    def test_days_listing_and_has(self, tmp_path):
        store = TraceStore(tmp_path)
        store.put(partition(0, ["a.com"]))
        store.put(partition(4, ["b.com"]))
        assert store.days() == (0, 4)
        assert store.has(0) and store.has(4)
        assert not store.has(2)

    def test_get_missing_day_raises(self, tmp_path):
        store = TraceStore(tmp_path)
        with pytest.raises(StreamError, match="no partition"):
            store.get(7)

    def test_ref_missing_partition_raises(self, tmp_path):
        store = TraceStore(tmp_path)
        with pytest.raises(StreamError, match="no partition"):
            store.ref(7, "0" * 64)

    def test_tampered_trace_raises(self, tmp_path):
        store = TraceStore(tmp_path)
        ref = store.put(rich_partition())
        trace_file = next(tmp_path.glob("day-*")) / "trace.jsonl"
        lines = trace_file.read_text().splitlines()
        trace_file.write_text("\n".join(lines[:-1]) + "\n")  # drop a request
        with pytest.raises(StreamError, match="corrupt"):
            store.get(3, digest=ref.digest)

    def test_garbage_trace_raises(self, tmp_path):
        store = TraceStore(tmp_path)
        ref = store.put(rich_partition())
        (next(tmp_path.glob("day-*")) / "trace.jsonl").write_text("{nope\n")
        with pytest.raises(StreamError, match="corrupt"):
            store.get(3, digest=ref.digest)

    def test_corrupt_manifest_raises(self, tmp_path):
        store = TraceStore(tmp_path)
        store.put(rich_partition())
        (next(tmp_path.glob("day-*")) / "MANIFEST.json").write_text("{nope")
        with pytest.raises(StreamError, match="corrupt"):
            store.get(3)

    def test_orphaned_tmp_directory_is_ignored(self, tmp_path):
        store = TraceStore(tmp_path)
        ref = store.put(rich_partition())
        # Simulate a crashed put(): a complete tmp directory that never
        # got renamed into place must stay invisible.
        real = next(tmp_path.glob("day-00003-*"))
        shutil.copytree(real, real.with_name(real.name + ".tmp-999"))
        assert store.days() == (3,)
        assert store.get(3).day == 3
        assert store.put(rich_partition()).digest == ref.digest

    def test_missing_manifest_means_absent(self, tmp_path):
        store = TraceStore(tmp_path)
        store.put(rich_partition())
        (next(tmp_path.glob("day-*")) / "MANIFEST.json").unlink()
        assert not store.has(3)
        with pytest.raises(StreamError, match="no partition"):
            store.get(3)


class TestStoreBackedWindow:
    def test_window_holds_refs_and_serialises_references(self, tmp_path):
        store = TraceStore(tmp_path)
        window = RollingWindow(size=2, store=store)
        window.append(partition(0, ["a.com"]))
        window.append(partition(1, ["b.com"]))
        state = window.to_dict()
        assert state["store"] is True
        assert all(set(entry) == {"day", "digest"} for entry in state["partitions"])
        assert "requests" not in json.dumps(state)

    def test_combined_matches_in_memory_window(self, tmp_path):
        plain = RollingWindow(size=2)
        backed = RollingWindow(size=2, store=TraceStore(tmp_path))
        for day in range(3):
            plain.append(rich_partition(day))
            backed.append(rich_partition(day))
        plain_trace, plain_whois, plain_redirects = plain.combined()
        backed_trace, backed_whois, backed_redirects = backed.combined()
        assert backed_trace == plain_trace
        assert sorted(r.domain for r in backed_whois) == sorted(
            r.domain for r in plain_whois
        )
        assert backed_redirects.to_dict() == plain_redirects.to_dict()

    def test_from_dict_requires_store(self, tmp_path):
        window = RollingWindow(size=1, store=TraceStore(tmp_path))
        window.append(partition(0, ["a.com"]))
        with pytest.raises(StreamError, match="references a trace store"):
            RollingWindow.from_dict(window.to_dict())

    def test_from_dict_restores_lazily_then_loads(self, tmp_path):
        store = TraceStore(tmp_path)
        window = RollingWindow(size=2, store=store)
        window.append(rich_partition(0))
        window.append(rich_partition(1))
        restored = RollingWindow.from_dict(window.to_dict(), store=store)
        assert restored.days == (0, 1)
        assert [partition_digest(found) for found in restored.partitions] == [
            partition_digest(found) for found in window.partitions
        ]
        assert restored.combined()[0] == window.combined()[0]

    def test_eviction_returns_partitions_and_keeps_history_on_disk(self, tmp_path):
        store = TraceStore(tmp_path)
        window = RollingWindow(size=1, store=store)
        window.append(partition(0, ["a.com"]))
        (evicted,) = window.append(partition(1, ["b.com"]))
        assert evicted.day == 0
        assert store.days() == (0, 1)  # evicted day still stored


@pytest.fixture(scope="module")
def five_days():
    """Five generated days with campaigns overlapping across days."""
    return list(TraceGenerator(small_scenario(seed=3, days=5)).iter_days())


class TestStoreCheckpoints:
    def test_checkpoint_is_metadata_only(self, five_days, tmp_path):
        engine = StreamingSmash(window_size=2, store_dir=tmp_path / "store")
        for dataset in five_days[:3]:
            engine.ingest_dataset(dataset)
        path = save_checkpoint(engine, tmp_path / "stream.ckpt")
        payload = json.loads(path.read_text())
        assert payload["version"] == CHECKPOINT_VERSION
        window_state = payload["state"]["window"]
        assert window_state["store"] is True
        assert "requests" not in json.dumps(window_state)
        # Metadata plus tracker state: a few KB, not megabytes.
        assert path.stat().st_size < 64 * 1024

    def test_resume_mid_week_matches_uninterrupted(self, five_days, tmp_path):
        full = StreamingSmash(window_size=2)
        interrupted = StreamingSmash(window_size=2, store_dir=tmp_path / "store")
        checkpoint = tmp_path / "mid.ckpt"
        for dataset in five_days[:3]:
            full.ingest_dataset(dataset)
            interrupted.ingest_dataset(dataset)
        save_checkpoint(interrupted, checkpoint)
        del interrupted  # "kill" the original process

        resumed = load_checkpoint(checkpoint, store_dir=tmp_path / "store")
        assert resumed.last_day == 2
        assert resumed.window.days == (1, 2)
        # Advance past the stored days: the store supplies history, new
        # days arrive from the live feed.
        for dataset in five_days[3:]:
            full_update = full.ingest_dataset(dataset)
            resumed_update = resumed.ingest_dataset(dataset)
            assert resumed_update.result == full_update.result
        assert resumed.tracker.to_dict() == full.tracker.to_dict()

    def test_resume_reopens_recorded_store(self, five_days, tmp_path):
        engine = StreamingSmash(window_size=2, store_dir=tmp_path / "store")
        for dataset in five_days[:2]:
            engine.ingest_dataset(dataset)
        save_checkpoint(engine, tmp_path / "stream.ckpt")
        resumed = load_checkpoint(tmp_path / "stream.ckpt")  # no store passed
        assert resumed.store is not None
        assert [partition_digest(found) for found in resumed.window.partitions] == [
            partition_digest(found) for found in engine.window.partitions
        ]

    def test_resume_with_moved_store(self, five_days, tmp_path):
        engine = StreamingSmash(window_size=2, store_dir=tmp_path / "store")
        for dataset in five_days[:2]:
            engine.ingest_dataset(dataset)
        save_checkpoint(engine, tmp_path / "stream.ckpt")
        shutil.move(str(tmp_path / "store"), str(tmp_path / "moved"))
        resumed = load_checkpoint(
            tmp_path / "stream.ckpt", store_dir=tmp_path / "moved"
        )
        assert resumed.window.days == engine.window.days

    def test_missing_store_raises(self, five_days, tmp_path):
        engine = StreamingSmash(window_size=1, store_dir=tmp_path / "store")
        engine.ingest_dataset(five_days[0])
        save_checkpoint(engine, tmp_path / "stream.ckpt")
        shutil.rmtree(tmp_path / "store")
        with pytest.raises(StreamError):
            load_checkpoint(tmp_path / "stream.ckpt")

    def test_missing_partition_raises(self, five_days, tmp_path):
        engine = StreamingSmash(window_size=2, store_dir=tmp_path / "store")
        for dataset in five_days[:3]:
            engine.ingest_dataset(dataset)
        save_checkpoint(engine, tmp_path / "stream.ckpt")
        for found in (tmp_path / "store").glob("day-00001-*"):
            shutil.rmtree(found)
        with pytest.raises(StreamError, match="no partition"):
            load_checkpoint(tmp_path / "stream.ckpt")

    def test_corrupt_partition_raises_on_use(self, five_days, tmp_path):
        engine = StreamingSmash(window_size=2, store_dir=tmp_path / "store")
        for dataset in five_days[:3]:
            engine.ingest_dataset(dataset)
        save_checkpoint(engine, tmp_path / "stream.ckpt")
        victim = next((tmp_path / "store").glob("day-00002-*")) / "trace.jsonl"
        victim.write_text(victim.read_text()[: victim.stat().st_size // 2])
        resumed = load_checkpoint(tmp_path / "stream.ckpt")
        with pytest.raises(StreamError, match="corrupt"):
            resumed.window.combined()

    def test_version_1_inline_checkpoint_still_loads(self, tmp_path):
        engine = StreamingSmash(window_size=2)
        engine.ingest_day(
            0, HttpTrace([request("c1", "a.com"), request("c2", "a.com")])
        )
        path = save_checkpoint(engine, tmp_path / "stream.ckpt")
        payload = json.loads(path.read_text())
        payload["version"] = 1  # what PR 1 builds wrote
        path.write_text(json.dumps(payload))
        resumed = load_checkpoint(path)
        assert resumed.last_day == 0
        assert resumed.window.partitions[0].trace == engine.window.partitions[0].trace

    def test_store_ref_handles_repr_and_release(self, tmp_path):
        store = TraceStore(tmp_path)
        ref = store.put(rich_partition())
        assert isinstance(ref, PartitionRef)
        assert "loaded" in repr(ref)
        ref.release()
        assert "on disk" in repr(ref)
        assert ref.load().day == 3
