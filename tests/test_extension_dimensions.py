"""Tests for the opt-in extension dimensions (urlparam, time).

The headline test executes the paper's own false-negative remedy
(Section V-A2): enabling the parameter-pattern dimension recovers the
Cycbot/Fake-AV-style campaigns that the stock three dimensions miss.
"""

import pytest

from repro.config import DimensionConfig, SmashConfig
from repro.core.dimensions.timedim import active_windows_by_server, build_time_graph
from repro.core.dimensions.urlparam import (
    build_urlparam_graph,
    parameter_patterns_by_server,
)
from repro.core.pipeline import SmashPipeline
from repro.httplog.records import HttpRequest
from repro.httplog.trace import HttpTrace

LOOSE = DimensionConfig(
    min_edge_weight=1e-9,
    client_min_edge_weight=1e-9,
    max_file_server_fraction=1.0,
)


def request(client, host, uri="/x.html", ts=0.0, ip="1.1.1.1"):
    return HttpRequest(
        timestamp=ts,
        client=client,
        host=host,
        server_ip=ip,
        uri=uri,
    )


class TestUrlparamGraph:
    def test_patterns_extracted(self):
        trace = HttpTrace([
            request("c1", "a.com", uri="/x.php?p=1&id=2&e=3"),
            request("c1", "a.com", uri="/y.php?q=1"),
            request("c1", "b.com", uri="/plain.html"),
        ])
        patterns = parameter_patterns_by_server(trace)
        assert patterns["a.com"] == frozenset({("e", "id", "p"), ("q",)})
        assert "b.com" not in patterns

    def test_shared_pattern_connects(self):
        trace = HttpTrace([
            request("c1", "a.com", uri="/u1.php?said=1&tid=2"),
            request("c2", "b.com", uri="/u2.php?said=9&tid=8"),
        ])
        graph = build_urlparam_graph(trace, LOOSE)
        assert graph.edge_weight("a.com", "b.com") == pytest.approx(1.0)

    def test_different_patterns_disconnect(self):
        trace = HttpTrace([
            request("c1", "a.com", uri="/u1.php?x=1"),
            request("c2", "b.com", uri="/u2.php?y=1"),
        ])
        graph = build_urlparam_graph(trace, LOOSE)
        assert not graph.has_edge("a.com", "b.com")

    def test_ubiquitous_pattern_ignored(self):
        requests = [
            request(f"c{i}", f"s{i}.com", uri=f"/p{i}.php?id={i}")
            for i in range(10)
        ]
        graph = build_urlparam_graph(
            HttpTrace(requests),
            DimensionConfig(max_file_server_fraction=0.5, min_edge_weight=1e-9),
        )
        assert graph.num_edges() == 0


class TestTimeGraph:
    def test_windows_extracted(self):
        trace = HttpTrace([
            request("c1", "a.com", ts=30.0),
            request("c1", "a.com", ts=650.0),
        ])
        windows = active_windows_by_server(trace, window_seconds=600.0)
        assert windows["a.com"] == frozenset({0, 1})

    def test_cooccurring_servers_connect(self):
        trace = HttpTrace([
            request("b1", "cnc1.com", ts=100.0),
            request("b1", "cnc2.com", ts=130.0),
            request("b1", "cnc1.com", ts=7300.0),
            request("b1", "cnc2.com", ts=7350.0),
            request("c9", "benign.com", ts=40000.0),
        ])
        graph = build_time_graph(trace, LOOSE)
        assert graph.edge_weight("cnc1.com", "cnc2.com") == pytest.approx(1.0)
        assert not graph.has_edge("cnc1.com", "benign.com")

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            active_windows_by_server(HttpTrace([]), window_seconds=0.0)


class TestFalseNegativeRecovery:
    """The Section V-A2 remedy, end to end."""

    @pytest.fixture(scope="class")
    def stock_and_extended(self, small_dataset):
        stock = SmashPipeline().run(
            small_dataset.trace,
            whois=small_dataset.whois,
            redirects=small_dataset.redirects,
        )
        extended_config = SmashConfig(
            enabled_secondary_dimensions=("urifile", "ipset", "whois", "urlparam"),
        )
        extended = SmashPipeline(extended_config).run(
            small_dataset.trace,
            whois=small_dataset.whois,
            redirects=small_dataset.redirects,
        )
        return stock, extended

    def test_stock_system_misses_fn_campaign(self, small_dataset, stock_and_extended):
        stock, _ = stock_and_extended
        fn = next(c for c in small_dataset.truth.campaigns if c.name == "small-fn")
        assert not (fn.servers & stock.detected_servers)

    def test_parameter_dimension_recovers_fn_campaign(
        self, small_dataset, stock_and_extended
    ):
        """'If we extend our URI file dimension to consider the parameter
        pattern, we could detect these threats.'"""
        _, extended = stock_and_extended
        fn = next(c for c in small_dataset.truth.campaigns if c.name == "small-fn")
        assert fn.servers & extended.detected_servers

    def test_extension_does_not_lose_stock_detections(
        self, small_dataset, stock_and_extended
    ):
        stock, extended = stock_and_extended
        truth = small_dataset.truth
        stock_tp = stock.detected_servers & truth.malicious_servers
        extended_tp = extended.detected_servers & truth.malicious_servers
        assert stock_tp <= extended_tp

    def test_extension_adds_no_pure_benign_fp(
        self, small_dataset, stock_and_extended
    ):
        _, extended = stock_and_extended
        truth = small_dataset.truth
        for server in extended.detected_servers:
            if truth.campaign_of(server) is None:
                replaced = any(
                    server in c.replaced_servers.values()
                    for c in extended.campaigns
                )
                assert server in truth.noise_category or replaced, server
