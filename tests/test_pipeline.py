"""Pipeline-level tests: single-client segregation, sweeps, invariants."""

import pytest

from repro.config import SmashConfig
from repro.core.pipeline import SmashPipeline
from repro.core.results import MAIN_DIMENSION
from repro.errors import PipelineError
from repro.httplog.records import HttpRequest
from repro.httplog.trace import HttpTrace


def request(client, host, uri="/x.html", ip=None):
    return HttpRequest(
        timestamp=0.0,
        client=client,
        host=host,
        server_ip=ip or "1.1.1.1",
        uri=uri,
    )


class TestPipelineBasics:
    def test_empty_trace_rejected(self):
        with pytest.raises(PipelineError):
            SmashPipeline().run(HttpTrace([]))

    def test_invalid_config_rejected_at_construction(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            SmashPipeline(SmashConfig(min_campaign_clients=0))

    def test_no_whois_registry_skips_dimension(self, small_dataset):
        mined = SmashPipeline().mine(small_dataset.trace, whois=None)
        assert "whois" not in mined.secondary
        assert "urifile" in mined.secondary

    def test_disabled_dimension_not_mined(self, small_dataset):
        config = SmashConfig(enabled_secondary_dimensions=("urifile",))
        mined = SmashPipeline(config).mine(
            small_dataset.trace, whois=small_dataset.whois
        )
        assert set(mined.secondary) == {"urifile"}


class TestSingleClientSegregation:
    def make_trace(self):
        # Two servers visited only by lone client cx, plus a multi-client
        # pair, plus a singleton exclusive server of another client.
        return HttpTrace([
            request("cx", "lone1.com"),
            request("cx", "lone2.com"),
            request("c1", "multi1.com"),
            request("c2", "multi1.com"),
            request("c1", "multi2.com"),
            request("c2", "multi2.com"),
            request("cy", "only.com"),
        ])

    def test_single_client_herd_formed(self):
        mined = SmashPipeline().mine(self.make_trace())
        herd_servers = [set(h.servers) for h in mined.main.herds]
        assert {"lone1.com", "lone2.com"} in herd_servers

    def test_single_client_herd_density_one(self):
        mined = SmashPipeline().mine(self.make_trace())
        herd = next(
            h for h in mined.main.herds if "lone1.com" in h.servers
        )
        assert herd.density == 1.0
        assert herd.dimension == MAIN_DIMENSION

    def test_lone_singleton_dropped(self):
        mined = SmashPipeline().mine(self.make_trace())
        assert "only.com" in mined.main.dropped

    def test_single_client_servers_not_in_multi_graph_herds(self):
        mined = SmashPipeline().mine(self.make_trace())
        multi_herd = next(h for h in mined.main.herds if "multi1.com" in h.servers)
        assert "lone1.com" not in multi_herd.servers


class TestRunSweep:
    def test_sweep_monotone(self, small_dataset):
        pipeline = SmashPipeline()
        results = pipeline.run_sweep(
            small_dataset.trace,
            thresholds=(0.5, 0.8, 1.0, 1.5),
            whois=small_dataset.whois,
            redirects=small_dataset.redirects,
        )
        detected = [len(results[t].detected_servers) for t in (0.5, 0.8, 1.0, 1.5)]
        assert detected == sorted(detected, reverse=True)
        campaigns = [len(results[t].campaigns) for t in (0.5, 0.8, 1.0, 1.5)]
        assert campaigns == sorted(campaigns, reverse=True)

    def test_sweep_equals_individual_runs(self, small_dataset):
        pipeline = SmashPipeline()
        sweep = pipeline.run_sweep(
            small_dataset.trace,
            thresholds=(0.8,),
            whois=small_dataset.whois,
            redirects=small_dataset.redirects,
        )
        single = pipeline.run(
            small_dataset.trace,
            whois=small_dataset.whois,
            redirects=small_dataset.redirects,
            thresh=0.8,
        )
        assert sweep[0.8].detected_servers == single.detected_servers


class TestResultInvariants:
    def test_campaign_servers_scored_above_thresh(self, small_result):
        for campaign in small_result.campaigns:
            for server, score in campaign.server_scores.items():
                assert score >= 0.8

    def test_campaigns_have_at_least_two_servers(self, small_result):
        for campaign in small_result.campaigns:
            assert campaign.num_servers >= 2

    def test_detected_servers_union(self, small_result):
        union = set()
        for campaign in small_result.campaigns:
            union |= campaign.servers
        assert small_result.detected_servers == frozenset(union)

    def test_campaigns_with_clients_bands(self, small_result):
        multi = small_result.campaigns_with_clients(2)
        single = small_result.campaigns_with_clients(1, 1)
        assert all(c.num_clients >= 2 for c in multi)
        assert all(c.num_clients == 1 for c in single)
        assert len(multi) + len(single) == len(small_result.campaigns)

    def test_candidate_ashes_reference_main_herds(self, small_result):
        main_indices = {
            h.index for h in small_result.herds_by_dimension[MAIN_DIMENSION]
        }
        for ash in small_result.candidate_ashes:
            assert ash.main_index in main_indices

    def test_determinism(self, small_dataset):
        first = SmashPipeline().run(
            small_dataset.trace,
            whois=small_dataset.whois,
            redirects=small_dataset.redirects,
        )
        second = SmashPipeline().run(
            small_dataset.trace,
            whois=small_dataset.whois,
            redirects=small_dataset.redirects,
        )
        assert first.detected_servers == second.detected_servers
        assert [c.servers for c in first.campaigns] == [
            c.servers for c in second.campaigns
        ]
