"""Unit tests for User-Agent helpers."""

from repro.httplog.records import HttpRequest
from repro.httplog.useragent import (
    dominant_user_agent,
    is_generic_user_agent,
    user_agent_profile,
)


def request(ua):
    return HttpRequest(
        timestamp=0.0,
        client="c1",
        host="x.com",
        server_ip="1.1.1.1",
        uri="/a.html",
        user_agent=ua,
    )


class TestIsGeneric:
    def test_browser_strings_generic(self):
        assert is_generic_user_agent("Mozilla/5.0 (Windows NT 6.1) Gecko")
        assert is_generic_user_agent("Opera/9.80")

    def test_malware_strings_distinctive(self):
        # The paper's campaign UAs must stay distinctive.
        assert not is_generic_user_agent("KUKU v5.05exp")
        assert not is_generic_user_agent("Internet Exploder")
        assert not is_generic_user_agent("ZmEu")

    def test_absent_ua_distinctive(self):
        # Table IX: the iframe campaign's "-" UA is a signal, not noise.
        assert not is_generic_user_agent("-")
        assert not is_generic_user_agent("")


class TestDominantUserAgent:
    def test_most_common(self):
        requests = [request("A"), request("B"), request("A")]
        assert dominant_user_agent(requests) == "A"

    def test_empty(self):
        assert dominant_user_agent([]) is None


class TestProfile:
    def test_filters_generic(self):
        requests = [request("Mozilla/5.0 X"), request("Bot/1"), request("-")]
        assert user_agent_profile(requests) == frozenset({"Bot/1", "-"})
