"""Tests for the baseline detectors and the paper's comparative claims."""

import pytest

from repro.baselines import (
    BlacklistOnlyDetector,
    ClientClusteringDetector,
    DomainReputationDetector,
    IdsOnlyDetector,
)


class TestIdsOnly:
    def test_detects_exactly_signature_hits(self, small_dataset):
        detector = IdsOnlyDetector(small_dataset.ids2012)
        detected = detector.detect_servers(small_dataset.trace)
        assert detected == small_dataset.ids2012.detected_servers(
            small_dataset.trace,
        ) or detected  # normalised name space
        # Every detection corresponds to a planted campaign server.
        for server in detected:
            assert small_dataset.truth.campaign_of(server) is not None

    def test_campaigns_grouped_by_threat(self, small_dataset):
        detector = IdsOnlyDetector(small_dataset.ids2013)
        campaigns = detector.detect_campaigns(small_dataset.trace)
        assert campaigns
        for threat, servers in campaigns.items():
            planted = next(
                c for c in small_dataset.truth.campaigns if c.name == threat
            )
            assert servers <= planted.servers


class TestBlacklistOnly:
    def test_confirms_only_listed(self, small_dataset):
        detector = BlacklistOnlyDetector(small_dataset.blacklists)
        detected = detector.detect_servers(small_dataset.trace)
        for server in detected:
            assert small_dataset.blacklists.is_confirmed(server)


class TestCoverageComparison:
    def test_smash_beats_ids_plus_blacklist(self, small_dataset, small_result,
                                            small_result_single):
        """The paper's headline: SMASH finds a multiple of what IDS and
        blacklists know (Section V-A2 reports ~7x)."""
        smash = (
            small_result.detected_servers | small_result_single.detected_servers
        )
        ids = IdsOnlyDetector(small_dataset.ids2012).detect_servers(
            small_dataset.trace
        )
        blacklist = BlacklistOnlyDetector(small_dataset.blacklists).detect_servers(
            small_dataset.trace
        )
        known = ids | blacklist
        smash_true = smash & small_dataset.truth.malicious_servers
        assert len(smash_true) >= 2 * len(known)


class TestClientClustering:
    def test_single_client_campaigns_invisible(self, small_dataset):
        """By construction the client-side baseline needs >= 2 infected
        clients (Section V-A3's argument)."""
        detector = ClientClusteringDetector()
        detected = detector.detect_servers(small_dataset.trace)
        single = next(
            c for c in small_dataset.truth.campaigns if c.name == "small-single"
        )
        assert not (single.servers & detected)

    def test_clusters_have_minimum_size(self, small_dataset):
        detector = ClientClusteringDetector(min_cluster_clients=2)
        for cluster in detector.cluster_clients(small_dataset.trace):
            assert len(cluster) >= 2


class TestDomainReputation:
    @pytest.fixture(scope="class")
    def trained(self, small_dataset):
        detector = DomainReputationDetector()
        detector.train(
            small_dataset.trace,
            small_dataset.ids2013,
            whois=small_dataset.whois,
        )
        return detector

    def test_requires_training(self, small_dataset):
        with pytest.raises(RuntimeError):
            DomainReputationDetector().score("x.com", small_dataset.trace)

    def test_training_requires_seeds(self, small_dataset):
        from repro.groundtruth.ids import SignatureIds
        detector = DomainReputationDetector()
        with pytest.raises(ValueError):
            detector.train(small_dataset.trace, SignatureIds("empty", []))

    def test_scores_are_probabilities(self, trained, small_dataset):
        from repro.domains.names import normalize_server_name
        aggregated = small_dataset.trace.map_hosts(normalize_server_name)
        for server in sorted(aggregated.servers)[:20]:
            assert 0.0 <= trained.score(server, aggregated) <= 1.0

    def test_dga_domains_score_higher_than_popular_benign(
        self, trained, small_dataset
    ):
        from repro.domains.names import normalize_server_name
        aggregated = small_dataset.trace.map_hosts(normalize_server_name)
        zeus = next(
            c for c in small_dataset.truth.campaigns if c.name == "small-zeus"
        )
        counts = aggregated.client_counts()
        popular = max(counts, key=counts.get)
        whois = small_dataset.whois
        zeus_scores = [trained.score(s, aggregated, whois) for s in zeus.servers]
        assert min(zeus_scores) > trained.score(popular, aggregated, whois)

    def test_misses_compromised_benign_victims(self, trained, small_dataset):
        """Per-domain reputation cannot flag iframe-injection victims:
        they look like ordinary benign sites (Section V-D1)."""
        iframe = next(
            c for c in small_dataset.truth.campaigns if c.name == "small-iframe"
        )
        detected = trained.detect_servers(
            small_dataset.trace, whois=small_dataset.whois
        )
        missed_victims = iframe.servers - detected
        assert len(missed_victims) >= len(iframe.servers) * 0.5

    def test_threshold_calibrated_above_half(self, trained):
        assert trained.decision_threshold >= 0.5
