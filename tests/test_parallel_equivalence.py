"""Parallel per-dimension mining must equal serial mining exactly.

``SmashPipeline.mine`` fans the main-dimension job and each secondary
dimension out over a configurable executor.  Because the mining core is
deterministic by construction (canonical node order, sorted adjacency,
seeded Louvain shuffle), scheduling must never change the output — these
tests assert full structural equality of the mined dimensions and of the
finished :class:`~repro.core.results.SmashResult` across worker counts
and executor kinds.
"""

from __future__ import annotations

import pytest

from repro.config import SmashConfig
from repro.core.pipeline import SECONDARY_GRAPH_BUILDERS, SmashPipeline
from repro.errors import ConfigError
from repro.util.parallel import EXECUTOR_KINDS, resolve_workers, run_jobs


class TestRunJobs:
    def test_serial_preserves_order(self):
        jobs = [lambda i=i: i * i for i in range(5)]
        assert run_jobs(jobs) == [0, 1, 4, 9, 16]

    def test_thread_pool_preserves_order(self):
        jobs = [lambda i=i: i * i for i in range(5)]
        assert run_jobs(jobs, workers=3, executor="thread") == [0, 1, 4, 9, 16]

    def test_exception_propagates(self):
        def boom():
            raise RuntimeError("job failed")

        with pytest.raises(RuntimeError, match="job failed"):
            run_jobs([boom], workers=2, executor="thread")
        with pytest.raises(RuntimeError, match="job failed"):
            run_jobs([boom, boom], workers=2, executor="thread")

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            run_jobs([], workers=2, executor="fibers")

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1  # auto: one per CPU
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestConfigValidation:
    def test_workers_and_executor_fields(self):
        SmashConfig(workers=0, executor="process").validate()
        with pytest.raises(ConfigError):
            SmashConfig(workers=-1).validate()
        with pytest.raises(ConfigError):
            SmashConfig(executor="fibers").validate()

    def test_executor_kinds_exposed(self):
        assert EXECUTOR_KINDS == ("serial", "thread", "process")


class TestRegistry:
    def test_registry_covers_every_known_dimension(self):
        known = {"urifile", "ipset", "whois", "urlparam", "time"}
        assert set(SECONDARY_GRAPH_BUILDERS) == known

    def test_whois_builder_skips_without_registry(self, small_dataset):
        mined = SmashPipeline().mine(small_dataset.trace, whois=None)
        assert "whois" not in mined.secondary
        assert "urifile" in mined.secondary


def test_trace_pickles_without_index_caches(small_dataset):
    """Process-pool payloads carry requests only; indices rebuild lazily."""
    import pickle

    trace = small_dataset.trace
    expected = trace.clients_by_server  # force the caches to exist
    clone = pickle.loads(pickle.dumps(trace))
    assert clone._clients_by_server is None  # not shipped in the pickle
    assert clone == trace
    assert clone.clients_by_server == expected  # re-derived on demand


class TestParallelEquivalence:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_mine_workers_match_serial(self, small_dataset, small_mined, executor):
        """workers=4 on either pool reproduces the serial MinedDimensions."""
        parallel = SmashPipeline().mine(
            small_dataset.trace,
            whois=small_dataset.whois,
            workers=4,
            executor=executor,
        )
        assert parallel.main == small_mined.main  # includes graph equality
        assert parallel.secondary == small_mined.secondary
        assert parallel.preprocess_report == small_mined.preprocess_report
        assert parallel.trace == small_mined.trace

    def test_finish_after_parallel_mine_matches_serial(
        self, small_dataset, small_result
    ):
        """The full SmashResult is equal field-for-field after parallel mine."""
        config = SmashConfig(workers=4, executor="thread")
        pipeline = SmashPipeline(config)
        result = pipeline.run(
            small_dataset.trace,
            whois=small_dataset.whois,
            redirects=small_dataset.redirects,
        )
        assert result == small_result

    def test_mine_rejects_bad_overrides_before_preprocessing(self, small_dataset):
        with pytest.raises(ConfigError):
            SmashPipeline().mine(small_dataset.trace, executor="fibers")
        with pytest.raises(ConfigError):
            SmashPipeline().mine(small_dataset.trace, workers=-1)

    def test_streaming_engine_accepts_worker_overrides(self, small_dataset):
        from repro.stream import StreamingSmash

        serial = StreamingSmash()
        parallel = StreamingSmash(workers=2, executor="thread")
        assert parallel.config.workers == 2
        first = serial.ingest_dataset(small_dataset)
        second = parallel.ingest_dataset(small_dataset)
        assert first.result == second.result
        assert [e.to_dict() for e in first.events] == [
            e.to_dict() for e in second.events
        ]
