"""Tests for remaining small surfaces: truth merging, coarse persistence
series, the dimension registry, result accessors."""

import pytest

from repro.core.dimensions import secondary_builders
from repro.core.results import Campaign, Herd
from repro.eval.figures import persistence_series
from repro.synth.truth import GroundTruth, PlantedCampaign


def planted(name, servers, clients, day=0):
    return PlantedCampaign(
        name=name,
        category="cnc",
        activity="communication",
        servers=frozenset(servers),
        clients=frozenset(clients),
        day=day,
    )


class TestGroundTruthMerging:
    def test_merged_with(self):
        a = GroundTruth(
            campaigns=(planted("a", {"s1"}, {"c1"}),),
            benign_servers=frozenset({"b1"}),
            noise_category={"n1": "torrent"},
        )
        b = GroundTruth(
            campaigns=(planted("b", {"s2"}, {"c2"}),),
            benign_servers=frozenset({"b2"}),
            noise_category={"n2": "adult"},
        )
        merged = a.merged_with(b)
        assert {c.name for c in merged.campaigns} == {"a", "b"}
        assert merged.benign_servers == {"b1", "b2"}
        assert merged.noise_category == {"n1": "torrent", "n2": "adult"}
        assert merged.malicious_servers == {"s1", "s2"}

    def test_merge_all(self):
        truths = [
            GroundTruth(campaigns=(planted(f"c{i}", {f"s{i}"}, {f"cl{i}"}),),
                        benign_servers=frozenset())
            for i in range(3)
        ]
        merged = GroundTruth.merge_all(truths)
        assert len(merged.campaigns) == 3

    def test_campaigns_with_min_clients(self):
        truth = GroundTruth(
            campaigns=(
                planted("multi", {"s1"}, {"c1", "c2"}),
                planted("single", {"s2"}, {"c1"}),
            ),
            benign_servers=frozenset(),
        )
        assert [c.name for c in truth.campaigns_with_min_clients(2)] == ["multi"]

    def test_servers_in_tier(self):
        campaign = PlantedCampaign(
            name="x",
            category="cnc",
            activity="communication",
            servers=frozenset({"a", "b"}),
            clients=frozenset({"c"}),
            tier_of_server={"a": "cnc", "b": "download"},
        )
        assert campaign.servers_in_tier("cnc") == frozenset({"a"})


class TestCoarsePersistenceSeries:
    def test_client_level_attribution(self):
        series = persistence_series([
            (frozenset({"s1", "s2"}), frozenset({"c1"})),
            (frozenset({"s1", "s3"}), frozenset({"c1"})),
            (frozenset({"s9"}), frozenset({"c9"})),
        ])
        assert series[0].new_servers_new_clients == 2
        assert series[1].old_servers == 1
        assert series[1].new_servers_old_clients == 1
        assert series[2].new_servers_new_clients == 1
        assert all(entry.total >= 0 for entry in series)


class TestDimensionRegistry:
    def test_builtin_builders_listed(self):
        builders = secondary_builders()
        assert set(builders) == {"urifile", "ipset", "whois"}
        assert all(callable(builder) for builder in builders.values())


class TestResultAccessors:
    def test_herd_validation(self):
        with pytest.raises(ValueError):
            Herd(dimension="client", index=0, servers=frozenset({"only"}),
                 density=1.0)
        with pytest.raises(ValueError):
            Herd(dimension="client", index=0,
                 servers=frozenset({"a", "b"}), density=1.5)

    def test_campaign_dimension_accessor_empty(self):
        campaign = Campaign(
            campaign_id=0,
            main_index=0,
            servers=frozenset({"a", "b"}),
            clients=frozenset({"c"}),
        )
        assert campaign.dimensions_of("a") == frozenset()
        assert campaign.num_servers == 2
        assert campaign.num_clients == 1
