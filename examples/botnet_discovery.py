#!/usr/bin/env python
"""Case study: discovering multi-tier botnets (paper Tables VII, VIII, X).

Plants a Bagle-style botnet (compromised download servers + C&C servers)
and a Zeus-style DGA herd in one day of traffic, runs SMASH, and shows

* how the two Bagle tiers form *different* URI-file herds but get merged
  back into one campaign through the shared infected clients (the
  campaign-inference step of Section III-E);
* how the Zeus herd is inferred from client + file + IP + Whois evidence
  before any signature for it exists (the zero-day argument);
* what each detection would have cost with IDS/blacklists alone.

Run:  python examples/botnet_discovery.py
"""

from __future__ import annotations

from repro import SmashPipeline
from repro.baselines import BlacklistOnlyDetector, IdsOnlyDetector
from repro.synth import ScenarioSpec, TraceGenerator
from repro.synth.campaigns import NoiseSpec
from repro.synth.scenarios import bagle_like, zeus_like


def build_scenario() -> ScenarioSpec:
    return ScenarioSpec(
        name="botnet-demo",
        seed=42,
        num_clients=300,
        num_popular_sites=8,
        num_medium_sites=60,
        num_longtail_sites=1200,
        sites_per_client_mean=7.0,
        campaigns=(
            bagle_like(name="bagle", num_clients=3, downloads=14, cncs=18),
            zeus_like(name="zeus", num_clients=2, cncs=8),
        ),
        noise=NoiseSpec(referrer_groups=2, referrer_group_size=8),
    )


def main() -> None:
    dataset = TraceGenerator(build_scenario()).generate_day(0)
    result = SmashPipeline().run(
        dataset.trace, whois=dataset.whois, redirects=dataset.redirects
    )

    bagle = next(c for c in dataset.truth.campaigns if c.name == "bagle")
    zeus = next(c for c in dataset.truth.campaigns if c.name == "zeus")

    for campaign in result.campaigns_with_clients(2):
        overlap_bagle = campaign.servers & bagle.servers
        overlap_zeus = campaign.servers & zeus.servers
        if overlap_bagle:
            downloads = overlap_bagle & bagle.servers_in_tier("download")
            cncs = overlap_bagle & bagle.servers_in_tier("cnc")
            print(f"Bagle campaign recovered as campaign #{campaign.campaign_id}:")
            print(f"  {len(downloads)}/14 download servers (shared 'file.txt')")
            print(f"  {len(cncs)}/18 C&C servers (shared 'news.php', params p/id/e)")
            print("  two URI-file herds merged through the common bot clients\n")
        if overlap_zeus:
            print(f"Zeus herd recovered as campaign #{campaign.campaign_id}:")
            for server in sorted(overlap_zeus):
                dims = ", ".join(sorted(campaign.dimensions_of(server)))
                print(f"  {server:<22} dims=[{dims}]")
            print()

    # What would the ground-truth sources have seen on their own?
    ids2012 = IdsOnlyDetector(dataset.ids2012).detect_servers(dataset.trace)
    ids2013 = IdsOnlyDetector(dataset.ids2013).detect_servers(dataset.trace)
    blacklisted = BlacklistOnlyDetector(dataset.blacklists).detect_servers(dataset.trace)
    detected = result.detected_servers
    planted = bagle.servers | zeus.servers
    print("coverage of the two planted botnets (servers):")
    print(f"  SMASH:            {len(detected & planted):3d} / {len(planted)}")
    print(f"  IDS 2012 sigs:    {len(ids2012 & planted):3d} / {len(planted)}")
    print(f"  IDS 2013 sigs:    {len(ids2013 & planted):3d} / {len(planted)}  "
          "(Zeus only gets signatures a year later)")
    print(f"  blacklists:       {len(blacklisted & planted):3d} / {len(planted)}")


if __name__ == "__main__":
    main()
