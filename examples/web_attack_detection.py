#!/usr/bin/env python
"""Case study: attacking-activity campaigns (paper Figure 1(b), Table IX).

SMASH detects not only malicious infrastructure but also *benign servers
under attack*: a ZmEu-style phpMyAdmin scanning campaign probing
``setup.php`` and an iframe-injection campaign uploading ``sm3.php`` to
WordPress victims.  The victims are ordinary benign sites — per-domain
reputation cannot flag them, but their shared attacker clients and shared
target file make a high-density herd.

Run:  python examples/web_attack_detection.py
"""

from __future__ import annotations

from collections import Counter

from repro import SmashPipeline
from repro.synth import ScenarioSpec, TraceGenerator
from repro.synth.campaigns import NoiseSpec
from repro.synth.scenarios import iframe_injection, web_scanner


def build_scenario() -> ScenarioSpec:
    return ScenarioSpec(
        name="attack-demo",
        seed=11,
        num_clients=300,
        num_popular_sites=8,
        num_medium_sites=60,
        num_longtail_sites=1200,
        sites_per_client_mean=7.0,
        campaigns=(
            web_scanner(name="zmeu", num_clients=2, victims=20),
            iframe_injection(name="iframe", num_clients=3, victims=60,
                             ids_known_servers=3),
        ),
        noise=NoiseSpec(adult_groups=2, adult_group_size=5),
    )


def main() -> None:
    dataset = TraceGenerator(build_scenario()).generate_day(0)
    result = SmashPipeline().run(
        dataset.trace, whois=dataset.whois, redirects=dataset.redirects
    )

    truth = {c.name: c for c in dataset.truth.campaigns}
    detected = result.detected_servers

    for name, label, filename in (
        ("zmeu", "ZmEu scanning campaign (setup.php probes)", "setup.php"),
        ("iframe", "iframe-injection campaign (sm3.php uploads)", "sm3.php"),
    ):
        campaign = truth[name]
        found = campaign.servers & detected
        print(f"{label}:")
        print(f"  victims planted: {len(campaign.servers)}, "
              f"recovered by SMASH: {len(found)}")
        # Show the path diversity of the shared target file.
        paths = Counter()
        for request in dataset.trace:
            if request.uri_file == filename:
                paths[request.uri.rsplit("/", 1)[0] + "/"] += 1
        print(f"  '{filename}' observed under {len(paths)} different paths, e.g.:")
        for path, _ in paths.most_common(3):
            print(f"    {path}{filename}")
        print()

    iframe = truth["iframe"]
    ids_hits = dataset.ids2012.detected_servers(dataset.trace) & iframe.servers
    print("paper's headline for this attack class: SMASH revealed ~600 injected "
          "servers where the IDS flagged 4.")
    print(f"here: SMASH {len(iframe.servers & detected)} vs IDS {len(ids_hits)} "
          f"of {len(iframe.servers)} planted victims")


if __name__ == "__main__":
    main()
