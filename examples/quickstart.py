#!/usr/bin/env python
"""Quickstart: run SMASH end-to-end on a small synthetic ISP trace.

Generates one day of traffic containing a Zeus-style DGA herd, an
iframe-injection campaign, a generic C&C flux campaign and background
noise, runs the full pipeline at the paper's operating point, and prints
the inferred campaigns with their per-dimension evidence.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import SmashConfig, SmashPipeline
from repro.synth import TraceGenerator, small_scenario


def main() -> None:
    # 1. A reproducible synthetic dataset (trace + whois + oracles).
    dataset = TraceGenerator(small_scenario(seed=7)).generate_day(0)
    stats = dataset.trace.stats()
    print(f"trace: {stats.num_requests} requests, {stats.num_servers} servers, "
          f"{stats.num_clients} clients")

    # 2. Run SMASH at the paper's defaults (thresh 0.8, IDF 200, mu 4).
    pipeline = SmashPipeline(SmashConfig())
    result = pipeline.run(
        dataset.trace, whois=dataset.whois, redirects=dataset.redirects
    )

    # 3. Report inferred campaigns.
    print(f"\ninferred {len(result.campaigns)} campaigns "
          f"({len(result.campaigns_with_clients(2))} with >= 2 clients)\n")
    for campaign in result.campaigns:
        planted = dataset.truth.campaign_of(sorted(campaign.servers)[0])
        origin = planted.name if planted else "not planted (noise/benign)"
        print(f"campaign #{campaign.campaign_id}: {campaign.num_servers} servers, "
              f"{campaign.num_clients} clients  <- {origin}")
        for server in sorted(campaign.servers)[:4]:
            dims = ", ".join(sorted(campaign.dimensions_of(server))) or "-"
            score = campaign.server_scores.get(server, 0.0)
            print(f"    {server:<34} score={score:4.2f}  dims=[{dims}]")
        if campaign.num_servers > 4:
            print(f"    ... and {campaign.num_servers - 4} more")
    print("\nSMASH sees only the trace and the probing oracles; the planted "
          "origins above are revealed for illustration only.")


if __name__ == "__main__":
    main()
