#!/usr/bin/env python
"""Operational pattern: evidence-driven alert scoring on a live stream.

``streaming_week.py`` shows the tracker firing an event for *every* new
or changed campaign — fine for five campaigns, unreadable at production
volume.  This example injects two planted campaigns into the same
synthetic universe and lets the scoring layer tell them apart:

* ``agile-zeroday`` — a fast-moving Zeus-like herd that rotates all of
  its C&C servers every day (the paper's "agile" pattern, Section V-B)
  and is covered only by the IDS2013 signature generation: zero-day
  evidence + high churn must escalate it to **critical**;
* ``stable-quiet`` — a persistent C&C herd on fixed infrastructure with
  no IDS or blacklist coverage at all: it should stay **info** and be
  suppressed entirely under ``min_severity="warning"``.

The stream runs twice over the same days — once recording everything,
once with the policy floor at ``critical`` — to show the alert feed
shrinking to exactly the confirmed fast-moving campaign, and closes
with the synthetic-ground-truth precision/recall report an operator
would tune the floor along.

Run:  python examples/alert_scoring.py
"""

from __future__ import annotations

from repro.eval.alerts import alert_quality
from repro.stream import AlertPolicy, ListSink, StreamingSmash, scenario_evidence
from repro.synth import TraceGenerator
from repro.synth.scenario_spec import ScenarioSpec
from repro.synth.scenarios import generic_cnc, zeus_like

DAYS = 5


def build_spec() -> ScenarioSpec:
    """A small universe plus the two contrasting planted campaigns."""
    active = tuple(range(DAYS))
    return ScenarioSpec(
        name="alert-scoring",
        seed=11,
        num_clients=200,
        num_popular_sites=6,
        num_medium_sites=40,
        num_longtail_sites=700,
        sites_per_client_mean=6.0,
        campaigns=(
            zeus_like(
                name="agile-zeroday",
                num_clients=3,
                cncs=8,
                agile=True,  # fresh servers every day -> high growth/churn
                active_days=active,
            ),
            generic_cnc(
                name="stable-quiet",
                num_clients=3,
                num_servers=6,
                share_ip=True,
                uri_file="sync.php",
                user_agent="QuietBot/2",
                ids2012_fraction=0.0,
                ids2013_fraction=0.0,
                blacklist_fraction=0.0,  # no external evidence at all
                active_days=active,
            ),
        ),
        days=DAYS,
    )


def stream(spec: ScenarioSpec, min_severity: str) -> tuple[StreamingSmash, list, ListSink]:
    sink = ListSink()
    engine = StreamingSmash(
        window_size=2,  # the 2-day window makes daily rotation visible as growth
        sinks=(sink,),
        evidence=scenario_evidence(),  # ids2012 + ids2013 zero-day + blacklist
        policy=AlertPolicy(min_severity=min_severity),
    )
    updates = engine.run_datasets(TraceGenerator(spec).iter_days())
    engine.close()
    return engine, updates, sink


def main() -> None:
    spec = build_spec()
    print(f"streaming {DAYS} days of {spec.name!r} with evidence-driven scoring\n")

    engine, updates, sink = stream(spec, min_severity="info")
    for update in updates:
        for event in update.events:
            print(
                f"  day {event.day} [{event.severity:>8}] {event.kind:<16} "
                f"{event.uid}  score={event.score}"
            )

    print("\ncampaign identities and their final risk assessment:")
    for campaign in engine.tracker.campaigns:
        features, score = engine.scorer.assess(campaign, engine.evidence)
        evidence = {name: count for name, count in features.evidence.items() if count}
        print(
            f"  {campaign.uid}: growth={features.growth_rate:.1f}/day "
            f"churn={features.churn_rate:.1f}/day "
            f"lifetime={features.lifetime_days}d score={score} "
            f"evidence={evidence or '{}'}"
        )

    # The zero-day agile campaign must surface as critical; the quiet
    # stable one must never rise above info.
    severities = {event.uid: event.severity for event in sink.events}
    critical_uids = {u for u, s in severities.items() if s == "critical"}
    assert critical_uids, "expected the agile zero-day campaign to go critical"

    engine_critical, updates_critical, sink_critical = stream(spec, min_severity="critical")
    print(
        f"\nalert volume: {len(sink.events)} events at min_severity=info, "
        f"{len(sink_critical.events)} at min_severity=critical"
    )
    assert len(sink_critical.events) < len(sink.events), (
        "raising the severity floor must strictly reduce alert volume"
    )
    assert all(event.severity == "critical" for event in sink_critical.events)

    truths = [dataset.truth for dataset in TraceGenerator(spec).iter_days()]
    report = alert_quality(engine, updates, truths)
    print("\nalert precision/recall against the planted ground truth:")
    for severity, row in report.items():
        print(
            f"  >= {severity:>8}: {row['alerts']:>2} alerts over "
            f"{row['identities']} identities, precision={row['precision']} "
            f"recall={row['recall']}"
        )


if __name__ == "__main__":
    main()
