#!/usr/bin/env python
"""Operational pattern: daily SMASH runs over a week (paper Section V-B).

SMASH "can be run everyday to detect daily malicious activities".  This
example runs the pipeline on seven consecutive days of traffic containing
persistent campaigns (same servers all week), agile campaigns (same
infected clients, fresh servers every day) and campaigns that first
appear mid-week, then classifies each day's detections the way Figure 7
does: old servers / new servers with known clients / entirely new.

Run:  python examples/weekly_monitoring.py   (takes a minute or two)
"""

from __future__ import annotations

from repro import SmashPipeline
from repro.eval.figures import persistence_series_detailed
from repro.synth import TraceGenerator, small_scenario


def main() -> None:
    spec = small_scenario(seed=3, days=7)
    generator = TraceGenerator(spec)
    pipeline = SmashPipeline()

    daily_campaigns = []
    for day in range(7):
        dataset = generator.generate_day(day)
        result = pipeline.run(
            dataset.trace, whois=dataset.whois, redirects=dataset.redirects
        )
        campaigns = list(result.campaigns)
        daily_campaigns.append(campaigns)
        servers = result.detected_servers
        print(f"day {day}: {len(campaigns)} campaigns, {len(servers)} servers")

    print("\npersistent vs agile decomposition (Figure 7):")
    print(f"{'day':>4} {'old servers':>12} {'new srv/old clients':>20} "
          f"{'new srv/new clients':>20}")
    for entry in persistence_series_detailed(daily_campaigns):
        print(f"{entry.day:>4} {entry.old_servers:>12} "
              f"{entry.new_servers_old_clients:>20} "
              f"{entry.new_servers_new_clients:>20}")
    print("\nday 0 is the benchmark day: everything it sees is 'new'.")


if __name__ == "__main__":
    main()
