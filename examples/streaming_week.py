#!/usr/bin/env python
"""Operational pattern: the incremental streaming engine over a week.

Where ``weekly_monitoring.py`` re-runs the batch pipeline per day and
compares server sets after the fact, this example drives the same seven
synthetic days through :class:`repro.stream.StreamingSmash`:

* each day slides the rolling window and runs SMASH once;
* the :class:`~repro.stream.CampaignTracker` matches campaigns across
  days (server-set Jaccard, client-set fallback for agile herds) so a
  campaign keeps ONE stable ID for its whole lifetime;
* new-campaign / growth / death events stream to an alert sink;
* a JSON checkpoint taken mid-week is enough to kill the process and
  resume with bit-identical tracker state.

Run:  python examples/streaming_week.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.stream import ListSink, StreamingSmash, load_checkpoint, save_checkpoint
from repro.synth import TraceGenerator, small_scenario

DAYS = 7
KILL_AFTER_DAY = 3  # checkpoint + "crash" after ingesting this day


def main() -> None:
    spec = small_scenario(seed=3, days=DAYS)
    sink = ListSink()
    engine = StreamingSmash(sinks=(sink,))

    print(f"streaming {DAYS} days of {spec.name!r} traffic "
          f"(window={engine.window.size} day)\n")
    checkpoint = Path(tempfile.mkdtemp(prefix="smash-stream-")) / "week.ckpt"
    for dataset in TraceGenerator(spec).iter_days():
        update = engine.ingest_dataset(dataset)
        new = len(update.events_of("new_campaign"))
        grown = len(update.events_of("campaign_growth"))
        print(f"day {update.day}: {update.num_campaigns} campaigns, "
              f"{len(update.detected_servers)} servers "
              f"(+{new} new, {grown} grown, "
              f"{len(update.active)} active identities)")
        if update.day == KILL_AFTER_DAY:
            save_checkpoint(engine, checkpoint)

    print("\ncampaign identities over the week:")
    persistent = []
    for row in engine.tracker.lifetimes():
        print(f"  {row['uid']}: days {row['first_seen']}-{row['last_seen']}, "
              f"seen {row['days_seen']}x "
              f"({row['max_consecutive_days']} consecutive), "
              f"{row['servers']} servers, "
              f"+{row['servers_added']}/-{row['servers_removed']} churn")
        if row["max_consecutive_days"] >= 3:
            persistent.append(row["uid"])
    print(f"\n{len(persistent)} campaigns persisted >= 3 consecutive days "
          f"under a stable ID: {', '.join(persistent)}")
    assert persistent, "expected at least one persistent campaign"

    print("\nFigure-7 decomposition from the tracker (old / agile / new servers):")
    for day in engine.tracker.persistence_series():
        print(f"  day {day.day}: {day.old_servers:>3} old, "
              f"{day.new_servers_old_clients:>3} new-server/old-client, "
              f"{day.new_servers_new_clients:>3} brand new")

    # -- kill-and-resume: replay days 4..6 from the mid-week checkpoint ------
    resumed = load_checkpoint(checkpoint)
    print(f"\nresumed from checkpoint at day {resumed.last_day}; "
          f"replaying days {KILL_AFTER_DAY + 1}-{DAYS - 1} ...")
    for dataset in TraceGenerator(spec).iter_days(start=KILL_AFTER_DAY + 1):
        resumed.ingest_dataset(dataset)
    identical = resumed.tracker.to_dict() == engine.tracker.to_dict()
    print(f"resumed tracker state identical to uninterrupted run: {identical}")
    assert identical, "checkpoint resume must reproduce the tracker state"


if __name__ == "__main__":
    main()
